"""The codegen execution backend against the interpreter, on micro designs.

The interpreter is the specification; the compiled driver must be
*observationally identical* on everything that feeds a report:
``resumes``, ``value_changes``, the per-owner maps, per-signal
counters, final values and simulated time.  These tests exercise each
specialized driver arm (batched clock, sprint, timers, single-update
epilogue) plus every bail-out reason (X/Z, monitors, multi-waiter
wakeups) on designs small enough that a divergence pinpoints the arm.
"""

import io

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.kernel import (
    Clock,
    Edge,
    Event,
    FallingEdge,
    MHz,
    Module,
    RisingEdge,
    Signal,
    Simulator,
    Timer,
    VcdWriter,
    xbits,
)
from repro.kernel.codegen import mux, ref
from repro.kernel.codegen.emitter import _CODE_CACHE


def _stats_fingerprint(sim, *extra):
    st_ = sim.stats
    return (
        sim.time,
        st_.resumes,
        st_.value_changes,
        tuple(sorted((k.path, v) for k, v in st_.resumes_by_owner.items())),
        tuple(sorted((k.path, v) for k, v in st_.changes_by_owner.items())),
        extra,
    )


def _both(build_and_run):
    """Run the same scenario under both backends; return fingerprints."""
    return (
        build_and_run("interp"),
        build_and_run("codegen"),
    )


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            Simulator(backend="bogus")

    def test_backend_name_recorded(self):
        assert Simulator().backend_name == "interp"
        assert Simulator(backend="codegen").backend_name == "codegen"

    def test_driver_code_is_cached_per_clock_count(self):
        def run():
            sim = Simulator(backend="codegen")
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)
            sim.run(until=10 * MHz(100))
            return sim

        run()
        assert 1 in _CODE_CACHE
        code_before = _CODE_CACHE[1][0]
        run()  # second simulator with the same clock count reuses it
        assert _CODE_CACHE[1][0] is code_before


class TestMicroParity:
    def test_pure_clock(self):
        def run(backend):
            sim = Simulator(backend=backend)
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)
            sim.run(until=3_000 * MHz(100))
            return _stats_fingerprint(
                sim, clk.cycles, clk.out.value.value,
                clk.out.fast_hits, clk.out.change_count,
            )

        a, b = _both(run)
        assert a == b

    def test_clock_with_edge_waiter(self):
        def run(backend):
            sim = Simulator(backend=backend)
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)
            rises, falls = [0], [0]

            def rise_w():
                while True:
                    yield RisingEdge(clk.out)
                    rises[0] += 1

            def fall_w():
                while True:
                    yield FallingEdge(clk.out)
                    falls[0] += 1

            sim.fork(rise_w())
            sim.fork(fall_w())
            sim.run(until=500 * MHz(100))
            return _stats_fingerprint(sim, rises[0], falls[0], clk.cycles)

        a, b = _both(run)
        assert a == b

    def test_timer_paced_writer_with_watcher(self):
        def run(backend):
            sim = Simulator(backend=backend)
            sig = Signal("s", 32, init=0)
            sim.register_signal(sig)
            seen = [0]

            def writer():
                for i in range(300):
                    sig.next = i + 1
                    yield Timer(10)

            def watcher():
                while True:
                    yield Edge(sig)
                    seen[0] += 1

            sim.fork(writer())
            sim.fork(watcher())
            sim.run()
            return _stats_fingerprint(
                sim, seen[0], sig.value.value, sig.fast_hits, sig.change_count
            )

        a, b = _both(run)
        assert a == b

    def test_xz_commit_bails_to_interpreter_exactly(self):
        """X-carrying commits take the four-state path on both backends."""

        def run(backend):
            sim = Simulator(backend=backend)
            sig = Signal("s", 4, init=0)
            sim.register_signal(sig)
            log = []

            def writer():
                for v in (1, xbits(4), 2, xbits(4), 3):
                    sig.next = v
                    yield Timer(10)

            def watcher():
                while True:
                    yield Edge(sig)
                    log.append(repr(sig.value))

            sim.fork(writer())
            sim.fork(watcher())
            sim.run()
            return _stats_fingerprint(
                sim, tuple(log), sig.fast_hits, sig.fast_misses
            )

        a, b = _both(run)
        assert a == b

    def test_monitored_signal_bails_exactly(self):
        def run(backend):
            sim = Simulator(backend=backend)
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)
            ticks = []
            clk.out.add_monitor(lambda s, old, new: ticks.append(new.value))
            sim.run(until=50 * MHz(100))
            return _stats_fingerprint(sim, tuple(ticks), clk.cycles)

        a, b = _both(run)
        assert a == b

    def test_force_mid_run(self):
        def run(backend):
            sim = Simulator(backend=backend)
            sig = Signal("s", 8, init=0)
            sim.register_signal(sig)

            def proc():
                sig.next = 5
                sig.force(0xAA)
                yield Timer(100)
                sig.next = 7
                yield Timer(100)

            sim.fork(proc())
            sim.run()
            return _stats_fingerprint(sim, sig.value.value)

        a, b = _both(run)
        assert a == b
        assert a[-1] == (7,)

    def test_finish_stops_both_backends_identically(self):
        def run(backend):
            sim = Simulator(backend=backend)
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)

            def stopper():
                for _ in range(25):
                    yield RisingEdge(clk.out)
                sim.finish()

            sim.fork(stopper())
            sim.run(until=10_000 * MHz(100))
            return _stats_fingerprint(sim, clk.cycles)

        a, b = _both(run)
        assert a == b

    def test_run_until_event_parity(self):
        def run(backend):
            sim = Simulator(backend=backend)
            clk = Clock("clk", MHz(100))
            sim.add_module(clk)
            done = Event("done")

            def proc():
                for _ in range(40):
                    yield RisingEdge(clk.out)
                done.set(sim)

            sim.fork(proc())
            fired = sim.run_until_event(done, timeout=10_000 * MHz(100))
            return fired, _stats_fingerprint(sim, clk.cycles)

        a, b = _both(run)
        assert a == b
        assert a[0] is True

    def test_comb_region_parity(self):
        def run(backend):
            sim = Simulator(backend=backend)
            top = Module("top")
            a = top.signal("a", 8, init=0)
            b_ = top.signal("b", 8, init=0)
            sel = top.signal("sel", 1, init=0)
            x = top.signal("x", 8, init=0)
            y = top.signal("y", 8, init=0)
            top.comb(x, ref(a) & ref(b_))
            top.comb(y, mux(ref(sel), ref(x) ^ ref(a), ref(b_) + 1))

            def stim():
                for i in range(200):
                    a.next = (i * 7) & 0xFF
                    b_.next = (i * 13) & 0xFF
                    sel.next = i & 1
                    yield Timer(10)

            top.process(stim, name="stim")
            sim.add_module(top)
            sim.run()
            return _stats_fingerprint(sim, x.value.value, y.value.value)

        a, b = _both(run)
        assert a == b


class TestVcdFallback:
    def test_vcd_attached_runs_fall_back_and_match_byte_for_byte(self):
        def run(backend):
            sim = Simulator(backend=backend)
            top = Module("top")
            clk = Clock("clk", MHz(100), parent=top)
            data = top.signal("data", 8, init=0)
            stream = io.StringIO()
            writer = VcdWriter(stream, timescale="1ps")
            writer.trace(clk.out, scope="top")
            writer.trace(data, scope="top")

            def stim():
                for i in range(20):
                    yield RisingEdge(clk.out)
                    data.next = i

            top.process(stim, name="stim")
            sim.add_module(top)
            sim.attach_vcd(writer)
            sim.run(until=50 * MHz(100))
            sim.close()
            return stream.getvalue()

        a, b = _both(run)
        assert a == b


class TestCompiledCombProperty:
    """The compiled packed-int region equals the four-state reference."""

    def _region(self):
        sim = Simulator()
        top = Module("top")
        a = top.signal("a", 8, init=0)
        b = top.signal("b", 8, init=0)
        sel = top.signal("sel", 1, init=0)
        x = top.signal("x", 8, init=0)
        y = top.signal("y", 8, init=0)
        z = top.signal("z", 4, init=0)
        top.comb(x, (ref(a) & ref(b)) | (~ref(a) >> 2))
        top.comb(y, mux(ref(sel), ref(x) + ref(b), ref(a) - 1))
        top.comb(z, ref(y)[2:6] ^ ref(x)[0:4])
        sim.add_module(top)
        return top._comb_region, (a, b, sel)

    @given(
        st.integers(0, 255), st.integers(0, 255), st.integers(0, 1)
    )
    @settings(max_examples=80, deadline=None)
    def test_compiled_matches_eval_lv(self, av, bv, sv):
        region, (a, b, sel) = self._region()
        a.force(av)
        b.force(bv)
        sel.force(sv)
        vals = [s.value.value for s in region.inputs]
        outs = region.fn(*vals)
        env = {}
        for rule in region.ordered:
            env[rule.target] = rule.expr.eval_lv(env)
        for target, out in zip(region.targets, outs):
            ref_lv = env[target]
            assert ref_lv.xmask == 0 and ref_lv.zmask == 0
            assert out == ref_lv.value, (
                f"{target.name}: compiled {out:#x} != reference "
                f"{ref_lv.value:#x} for a={av:#x} b={bv:#x} sel={sv}"
            )

    def test_x_input_uses_four_state_reference(self):
        region, (a, b, sel) = self._region()
        a.force(xbits(8))
        b.force(0x0F)
        sel.force(1)
        env = {}
        for rule in region.ordered:
            env[rule.target] = rule.expr.eval_lv(env)
        # X contaminates: the AND with defined 0x0F keeps X where b is 1
        assert env[region.targets[0]].xmask != 0
