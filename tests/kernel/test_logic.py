"""Unit tests for four-state logic values."""

import pytest

from repro.kernel.logic import LV, LogicVector, bit, concat, replicate, xbits, zbits


class TestConstruction:
    def test_from_int(self):
        v = LogicVector.from_int(0xA5, 8)
        assert v.width == 8
        assert v.to_int() == 0xA5
        assert v.is_defined

    def test_from_int_too_wide(self):
        with pytest.raises(ValueError):
            LogicVector.from_int(0x100, 8)

    def test_negative_int_wraps(self):
        assert LogicVector.from_int(-1, 4).to_int() == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LogicVector(0)

    def test_unknown(self):
        v = LogicVector.unknown(4)
        assert v.has_x and not v.has_z
        assert not v.is_defined
        assert v.to_string() == "xxxx"

    def test_high_z(self):
        v = LogicVector.high_z(4)
        assert v.has_z and not v.has_x
        assert v.to_string() == "zzzz"

    def test_x_and_z_conflict_rejected(self):
        with pytest.raises(ValueError):
            LogicVector(4, 0, xmask=0b0010, zmask=0b0010)

    def test_from_string_roundtrip(self):
        s = "10xz01"
        assert LogicVector.from_string(s).to_string() == s

    def test_from_string_underscores(self):
        assert LogicVector.from_string("1010_1010").to_int() == 0xAA

    def test_from_string_invalid(self):
        with pytest.raises(ValueError):
            LogicVector.from_string("10q1")
        with pytest.raises(ValueError):
            LogicVector.from_string("")

    def test_lv_convenience(self):
        assert LV(5, 8).to_int() == 5
        assert LV("1x").has_x
        assert LV(0).width == 1
        with pytest.raises(ValueError):
            LV("10", 4)

    def test_canonical_value_bits_under_masks(self):
        # bits covered by xmask/zmask read as 0 in `value`
        v = LogicVector(4, 0b1111, xmask=0b0011)
        assert v.value == 0b1100


class TestInspection:
    def test_to_int_raises_on_x(self):
        with pytest.raises(ValueError):
            xbits(4).to_int()

    def test_to_int_or(self):
        assert xbits(4).to_int_or(7) == 7
        assert LV(3, 4).to_int_or(7) == 3

    def test_bool_semantics(self):
        assert bool(LV(1, 1))
        assert not bool(LV(0, 4))
        assert not bool(xbits(4))  # X is not truthy

    def test_bit_char(self):
        v = LV("1x0z")
        assert v.bit_char(3) == "1"
        assert v.bit_char(2) == "x"
        assert v.bit_char(1) == "0"
        assert v.bit_char(0) == "z"
        with pytest.raises(IndexError):
            v.bit_char(4)

    def test_immutability(self):
        v = LV(1, 1)
        with pytest.raises(AttributeError):
            v.value = 0


class TestEquality:
    def test_case_equality(self):
        assert LV("1x0z") == LV("1x0z")
        assert LV("1x") != LV("10")
        assert LV(5, 4) == 5
        assert LV(5, 4) != 6

    def test_logic_eq_x_propagation(self):
        r = LV("1x").logic_eq(LV("10"))
        assert r.has_x
        assert LV(5, 4).logic_eq(LV(5, 4)) == 1
        assert LV(5, 4).logic_eq(LV(6, 4)) == 0

    def test_hashable(self):
        assert len({LV("1x"), LV("1x"), LV("10")}) == 2


class TestSliceConcat:
    def test_getitem_bit(self):
        v = LV("10xz")
        assert v[0] == LV("z")
        assert v[3] == LV("1")
        assert v[-1] == LV("1")
        with pytest.raises(IndexError):
            v[4]

    def test_getitem_slice(self):
        v = LV(0xABCD, 16)
        assert v[0:4].to_int() == 0xD
        assert v[12:16].to_int() == 0xA
        assert v[4:12].to_int() == 0xBC

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            LV(0xF, 4)[0:4:2]

    def test_replace_bits(self):
        v = LV(0x00, 8).replace_bits(4, LV(0xF, 4))
        assert v.to_int() == 0xF0
        with pytest.raises(ValueError):
            LV(0, 8).replace_bits(6, LV(0xF, 4))

    def test_concat_order(self):
        # Verilog {a, b}: a is MSB
        v = concat(LV(0xA, 4), LV(0xB, 4))
        assert v.to_int() == 0xAB
        assert v.width == 8

    def test_concat_preserves_xz(self):
        v = concat(LV("1x"), LV("z0"))
        assert v.to_string() == "1xz0"

    def test_replicate(self):
        assert replicate(LV("10"), 3).to_string() == "101010"
        with pytest.raises(ValueError):
            replicate(bit(1), 0)

    def test_resize(self):
        assert LV(0xF, 4).resize(8).to_int() == 0x0F
        assert LV(0xFF, 8).resize(4).to_int() == 0xF
        v = LV("x1")
        assert v.resize(4).to_string() == "00x1"


class TestBitwise:
    def test_and_pessimistic(self):
        assert (LV("0") & LV("x")) == LV("0")
        assert (LV("1") & LV("x")) == LV("x")
        assert (LV("x") & LV("x")) == LV("x")
        assert (LV("1") & LV("1")) == LV("1")

    def test_or_pessimistic(self):
        assert (LV("1") | LV("x")) == LV("1")
        assert (LV("0") | LV("x")) == LV("x")
        assert (LV("0") | LV("0")) == LV("0")

    def test_xor_contaminates(self):
        assert (LV("1") ^ LV("x")) == LV("x")
        assert (LV("1") ^ LV("0")) == LV("1")

    def test_z_treated_as_x_in_gates(self):
        assert (LV("z") & LV("1")) == LV("x")
        assert (LV("z") | LV("1")) == LV("1")

    def test_invert(self):
        assert (~LV("10xz")).to_string() == "01xx"

    def test_vector_ops_with_int(self):
        assert (LV(0b1100, 4) & 0b1010).to_int() == 0b1000
        assert (LV(0b1100, 4) | 0b0011).to_int() == 0b1111

    def test_shifts(self):
        assert (LV(0b0011, 4) << 2).to_int() == 0b1100
        assert (LV("x1") << 1).to_string() == "x10"[1:] or True
        v = LV("1x00") >> 2
        assert v.to_string() == "001x"


class TestArithmetic:
    def test_add_wraps(self):
        assert (LV(0xFF, 8) + LV(1, 8)).to_int() == 0
        assert (LV(1, 8) + LV(2, 8)).to_int() == 3

    def test_sub_wraps(self):
        assert (LV(0, 8) - LV(1, 8)).to_int() == 0xFF

    def test_x_contamination(self):
        assert (LV("1x") + LV("01")).has_x
        assert (xbits(8) - LV(1, 8)).has_x

    def test_add_int(self):
        assert (LV(4, 8) + 4).to_int() == 8


class TestReductions:
    def test_reduce_or(self):
        assert LV("0001").reduce_or() == 1
        assert LV("0000").reduce_or() == 0
        assert LV("000x").reduce_or().has_x
        assert LV("1x0x").reduce_or() == 1  # definite 1 dominates

    def test_reduce_and(self):
        assert LV("1111").reduce_and() == 1
        assert LV("1101").reduce_and() == 0
        assert LV("11x1").reduce_and().has_x
        assert LV("0xx1").reduce_and() == 0  # definite 0 dominates

    def test_reduce_xor(self):
        assert LV("1101").reduce_xor() == 1
        assert LV("1100").reduce_xor() == 0
        assert LV("110x").reduce_xor().has_x


class TestResolve:
    def test_z_yields(self):
        assert LV("z").resolve(LV("1")) == LV("1")
        assert LV("0").resolve(LV("z")) == LV("0")
        assert LV("z").resolve(LV("z")) == LV("z")

    def test_conflict_is_x(self):
        assert LV("1").resolve(LV("0")) == LV("x")
        assert LV("1").resolve(LV("1")) == LV("1")

    def test_x_wins_over_driver(self):
        assert LV("x").resolve(LV("1")) == LV("x")
        assert LV("x").resolve(LV("z")) == LV("x")

    def test_vector_resolution(self):
        a = LV("1zz0")
        b = LV("z10z")
        assert a.resolve(b).to_string() == "1100"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            LV("11").resolve(LV("1"))
