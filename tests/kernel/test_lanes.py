"""The lane engine's determinism contract: vector == scalar, always.

Every test here runs the same :class:`LaneProgram` on both paths and
compares results structurally — the block result of lane i must be
identical whether the lane stayed on the packed NumPy vector path or
was peeled (plan-time or mid-run) to the event-driven scalar kernel.
"""

import pytest

from repro.kernel import (
    Clock,
    LogicVector,
    LaneProgram,
    LaneSpec,
    MHz,
    Module,
    Simulator,
    run_lane_block,
    run_scalar_lane,
)
from repro.kernel.codegen import mux, ref

N_CYCLES = 64


def _build():
    top = Module("lane_test")
    clk = Clock("clk", MHz(100), parent=top)
    a = top.signal("a", 16, init=0x3)
    b = top.signal("b", 16, init=0x5)
    acc = top.signal("acc", 16, init=0)
    inj = top.signal("inj", 16, init=0)
    c = top.signal("c", 16)
    p = top.signal("p", 1)
    top.comb(c, (ref(a) ^ (ref(b) >> 2)) + ref(inj))
    top.comb(p, ref(c).reduce_xor())
    spec = LaneSpec(
        registers=(
            (a, ref(c) + 1),
            (b, mux(ref(p), ref(a) ^ ref(c), ref(b) + 3)),
            (acc, ref(acc) ^ ref(c)),
        ),
        inputs=(inj,),
        taps=(acc, a, b),
    )
    return top, clk, spec


def _stimulus(param, cycle):
    if cycle == 0:
        return {"inj": param["seed"] & 0xFFFF}
    if cycle == param.get("x_at"):
        return {"inj": LogicVector(16, value=0x11, xmask=0xFF00)}
    if cycle % 5 == 0:
        return {"inj": (param["seed"] * cycle) & 0xFFFF}
    return None


PROGRAM = LaneProgram(
    name="lane_test",
    build=_build,
    n_cycles=N_CYCLES,
    stimulus=_stimulus,
)


def _params(n, **extra):
    return [{"seed": 17 + 13 * i, **extra} for i in range(n)]


def _scalar_results(params):
    return [run_scalar_lane(PROGRAM, p) for p in params]


@pytest.mark.parametrize("n", [1, 4, 7])
def test_vector_matches_scalar(n):
    params = _params(n)
    results, stats = run_lane_block(PROGRAM, params)
    assert results == _scalar_results(params)
    assert stats.lanes == n
    assert stats.vectorized == n
    assert stats.peeled == []


def test_mid_run_timing_divergence_peels_and_matches():
    params = _params(5)
    params[1]["diverge_at_cycle"] = 20
    params[3]["diverge_at_cycle"] = 0
    results, stats = run_lane_block(PROGRAM, params)
    assert results == _scalar_results(params)
    assert stats.vectorized == 3
    assert stats.peeled == [(1, "timing-divergence"), (3, "timing-divergence")]


def test_x_stimulus_peels_and_matches_four_state_scalar():
    params = _params(4)
    params[2]["x_at"] = 9
    results, stats = run_lane_block(PROGRAM, params)
    assert results == _scalar_results(params)
    assert stats.peeled == [(2, "x-stimulus")]
    # the peeled lane's taps really went through the 4-state path
    assert isinstance(results[2]["taps"]["acc"], dict)
    assert results[2]["taps"]["acc"]["x"] != 0


def test_plan_time_vcd_and_monitor_demands_peel():
    params = _params(4)
    params[0]["vcd"] = "waves.vcd"
    params[3]["monitor"] = object()  # unpicklable on purpose: never shipped
    results, stats = run_lane_block(PROGRAM, params)
    scalar = _scalar_results(params)
    assert results == scalar
    assert stats.vectorized == 2
    assert stats.peeled == [(0, "vcd-demand"), (3, "monitor-demand")]


def test_wide_signal_vectorizes():
    # >64-bit signals used to peel the whole block; the wide lane
    # dialect (object-dtype arrays of Python ints) keeps them vector
    def build():
        top = Module("wide")
        clk = Clock("clk", MHz(100), parent=top)
        w = top.signal("w", 96, init=1)
        spec = LaneSpec(
            registers=((w, ref(w) + 1),), inputs=(), taps=(w,)
        )
        return top, clk, spec

    program = LaneProgram(
        name="wide", build=build, n_cycles=8, stimulus=lambda p, c: None
    )
    params = [{}, {}, {}]
    results, stats = run_lane_block(program, params)
    assert stats.vectorized == 3
    assert stats.peeled == []
    assert results == [run_scalar_lane(program, p) for p in params]
    assert results[0]["taps"]["w"] == 9


def _build_wide():
    top = Module("wide_mix")
    clk = Clock("clk", MHz(100), parent=top)
    a = top.signal("a", 96, init=(1 << 95) | 0x3)
    b = top.signal("b", 96, init=0x5)
    acc = top.signal("acc", 128, init=0)
    inj = top.signal("inj", 96, init=0)
    c = top.signal("c", 96)
    p = top.signal("p", 1)
    ov = top.signal("ov", 1)
    # exercise the whole wide dialect: bitwise, arith wrap, shift,
    # slice, concat, compare, mux, all three reductions
    top.comb(c, ((ref(a) ^ (ref(b) >> 2)) + ref(inj)) & ~ref(b))
    top.comb(p, ref(c).reduce_xor() ^ ref(c).reduce_and())
    top.comb(ov, ref(c).lt(ref(a)) & ref(c)[95] & ref(c).reduce_or())
    from repro.kernel.codegen import cat

    spec = LaneSpec(
        registers=(
            (a, (ref(c) << 1) + 1),
            (b, mux(ref(p), ref(a) ^ ref(c), ref(b) + 3)),
            (acc, (ref(acc) ^ cat(ref(ov), ref(c)[0:64])) + ref(a)),
        ),
        inputs=(inj,),
        taps=(acc, a, b, ov),
    )
    return top, clk, spec


def _wide_stimulus(param, cycle):
    if cycle == 0:
        return {"inj": (param["seed"] * (1 << 70)) | param["seed"]}
    if cycle == param.get("x_at"):
        return {"inj": LogicVector(96, value=0x11, xmask=0x3 << 90)}
    if cycle % 3 == 0:
        return {"inj": (param["seed"] << 65) ^ (param["seed"] * cycle)}
    return None


WIDE_PROGRAM = LaneProgram(
    name="wide_mix",
    build=_build_wide,
    n_cycles=N_CYCLES,
    stimulus=_wide_stimulus,
)


@pytest.mark.parametrize("n", [1, 5])
def test_wide_vector_matches_scalar(n):
    params = _params(n)
    results, stats = run_lane_block(WIDE_PROGRAM, params)
    assert results == [run_scalar_lane(WIDE_PROGRAM, p) for p in params]
    assert stats.vectorized == n
    assert stats.peeled == []
    # the values really exceeded the packed-uint64 range
    assert results[0]["taps"]["acc"] >= (1 << 64)


def test_wide_x_stimulus_peels_and_matches():
    params = _params(4)
    params[1]["x_at"] = 7
    results, stats = run_lane_block(WIDE_PROGRAM, params)
    assert results == [run_scalar_lane(WIDE_PROGRAM, p) for p in params]
    assert stats.peeled == [(1, "x-stimulus")]
    assert isinstance(results[1]["taps"]["acc"], dict)


def test_foreign_process_peels_whole_block():
    def build():
        top, clk, spec = _build()

        def rogue():
            yield from ()

        top.process(rogue, name="rogue")
        return top, clk, spec

    program = LaneProgram(
        name="rogue", build=build, n_cycles=N_CYCLES, stimulus=_stimulus
    )
    params = _params(3)
    results, stats = run_lane_block(program, params)
    assert stats.vectorized == 0
    assert len(stats.peeled) == 3
    assert all("rogue" in reason for _, reason in stats.peeled)
    assert results == [run_scalar_lane(program, p) for p in params]


def test_lanes_backend_without_block_is_plain_interp():
    # Simulator(backend="lanes") with no attached block must behave
    # exactly like the interpreter — the universal scalar fallback.
    ticks = []

    def build(sim):
        top = Module("plain")
        clk = Clock("clk", MHz(100), parent=top)

        def counter():
            from repro.kernel import RisingEdge

            while True:
                yield RisingEdge(clk.out)
                ticks.append(sim.time)

        top.process(counter, name="counter")
        sim.add_module(top)
        return clk

    sim = Simulator(backend="lanes")
    clk = build(sim)
    sim.run(until=10 * clk.period)
    assert len(ticks) == 10

    sim2 = Simulator(backend="interp")
    ticks2, ticks[:] = list(ticks), []
    clk2 = build(sim2)
    sim2.run(until=10 * clk2.period)
    assert ticks == ticks2


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="lanes"):
        Simulator(backend="warp")
