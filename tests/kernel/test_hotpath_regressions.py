"""Regression tests for the kernel hot-path overhaul.

Covers the PR-1 bugfixes (is_high/is_low symmetry, force() visibility
in VCD) and proves the 2-state fast path commits exactly what the
four-state path would on X->defined and defined->X transitions.
"""

import io

import pytest

from repro.analysis.profiling import fastpath_by_owner
from repro.kernel import (
    LV,
    Clock,
    Edge,
    FallingEdge,
    MHz,
    Module,
    RisingEdge,
    Signal,
    Simulator,
    Timer,
    VcdWriter,
    xbits,
    zbits,
)
from repro.kernel.logic import LogicVector, bit, intern_defined


# ----------------------------------------------------------------------
# is_high / is_low symmetry
# ----------------------------------------------------------------------
class TestHighLowSymmetry:
    def test_one_bit_defined(self):
        sig = Signal("s", 1, init=1)
        assert sig.is_high and not sig.is_low
        sig.force(0)
        assert sig.is_low and not sig.is_high

    @pytest.mark.parametrize("width", [2, 8, 32])
    def test_multibit_is_neither_high_nor_low(self, width):
        zeros = Signal("z", width, init=0)
        assert not zeros.is_low  # the old asymmetric behavior said True
        assert not zeros.is_high
        ones = Signal("o", width, init=1)
        assert not ones.is_high
        assert not ones.is_low

    @pytest.mark.parametrize("value", [xbits(1), zbits(1)])
    def test_undefined_bit_is_neither(self, value):
        sig = Signal("s", 1, init=value)
        assert not sig.is_high
        assert not sig.is_low

    def test_multibit_with_xz_is_neither(self):
        sig = Signal("s", 4, init=LV("00x0"))
        assert not sig.is_low and not sig.is_high
        sig.force(LV("zzzz"))
        assert not sig.is_low and not sig.is_high


# ----------------------------------------------------------------------
# force() records to the VCD
# ----------------------------------------------------------------------
class TestForceVcd:
    def _build(self):
        sim = Simulator()
        top = Module("top")
        sig = top.signal("data", 8, init=0)
        stream = io.StringIO()
        writer = VcdWriter(stream, timescale="1ps")
        writer.trace(sig, scope="top")
        sim.add_module(top)
        sim.attach_vcd(writer)
        return sim, sig, stream, writer

    def test_forced_value_appears_in_vcd(self):
        sim, sig, stream, writer = self._build()

        def proc():
            yield Timer(10_000)
            sig.force(0xA5)
            yield Timer(10_000)

        sim.fork(proc())
        sim.run()
        sim.close()
        text = stream.getvalue()
        assert "b10100101 " in text  # 0xa5, recorded at force time
        assert "#10000" in text

    def test_force_still_bypasses_monitors_and_triggers(self):
        sim, sig, stream, writer = self._build()
        seen = []
        sig.add_monitor(lambda s, old, new: seen.append(new))
        woke = [0]

        def watcher():
            while True:
                yield Edge(sig)
                woke[0] += 1

        def forcer():
            yield Timer(10_000)
            sig.force(0x5A)
            yield Timer(10_000)

        sim.fork(watcher())
        sim.fork(forcer())
        sim.run()
        sim.close()
        assert seen == []  # monitors intentionally bypassed
        assert woke[0] == 0  # edge triggers intentionally bypassed
        assert "b01011010 " in stream.getvalue()  # ... but the waveform shows it

    def test_force_without_vcd_or_sim_is_fine(self):
        sig = Signal("s", 8, init=0)
        sig.force(3)  # unbound: no simulator, no VCD
        assert sig.value == 3


# ----------------------------------------------------------------------
# 2-state fast path == four-state path
# ----------------------------------------------------------------------
class TestFastPathEquivalence:
    def _drive(self, width, transitions, watch=RisingEdge):
        """Drive `transitions` through a bound signal, return observations."""
        sim = Simulator()
        sig = Signal("s", width, init=transitions[0])
        sim.register_signal(sig)
        changes = []
        sig.add_monitor(lambda s, old, new: changes.append((old, new)))
        wakes = [0]

        def watcher():
            while True:
                yield watch(sig)
                wakes[0] += 1

        def writer():
            for value in transitions[1:]:
                sig.next = value
                yield Timer(10)

        sim.fork(watcher())
        sim.fork(writer())
        sim.run()
        return sig, changes, wakes[0]

    def test_x_to_defined_transition(self):
        sig, changes, wakes = self._drive(1, [xbits(1), 1])
        assert sig.value == bit(1)
        assert changes == [(xbits(1), bit(1))]
        assert wakes == 1  # X->1 is a rising edge (new lsb defined 1)
        # the X->defined commit itself is a four-state commit
        assert sig.fast_misses == 1
        assert sig.fast_hits == 0

    def test_defined_to_x_transition(self):
        sig, changes, wakes = self._drive(1, [1, xbits(1)], watch=FallingEdge)
        assert sig.value == xbits(1)
        assert changes == [(bit(1), xbits(1))]
        assert wakes == 0  # 1->X is not a defined falling edge
        assert sig.fast_misses == 1

    def test_defined_to_defined_uses_fast_path(self):
        sig, changes, wakes = self._drive(1, [0, 1, 0, 1])
        assert [int(n.value) for _, n in changes] == [1, 0, 1]
        assert wakes == 2
        assert sig.fast_hits == 3
        assert sig.fast_misses == 0

    @pytest.mark.parametrize(
        "old,new",
        [
            (LV("xxxx"), LV(5, 4)),
            (LV(5, 4), LV("xxxx")),
            (LV("zz00"), LV("1100")),
            (LV(9, 4), LV(9, 4)),  # no change
            (LV("x001"), LV("z001")),
        ],
    )
    def test_apply_matches_manual_four_state_compare(self, old, new):
        """Signal._apply agrees with an exact field-by-field comparison."""
        sig = Signal("s", 4, init=old)
        changed, seen_old = sig._apply(new)
        expected_change = not (
            new.value == old.value
            and new.xmask == old.xmask
            and new.zmask == old.zmask
            and new.width == old.width
        )
        assert changed == expected_change
        assert seen_old == old
        assert sig.value == (new if expected_change else old)

    def test_fast_path_counters_sum_to_commits(self):
        sig, changes, _ = self._drive(4, [0, 3, 3, xbits(4), 7, 7, 2])
        assert sig.fast_hits + sig.fast_misses == 6  # one per scheduled commit


# ----------------------------------------------------------------------
# interning and the batched clock
# ----------------------------------------------------------------------
class TestInterningAndClock:
    def test_small_defined_vectors_are_interned(self):
        assert bit(1) is bit(1)
        assert LogicVector.from_int(3, 4) is LogicVector.from_int(3, 4)
        assert intern_defined(8, 200) is intern_defined(8, 200)
        # wide vectors are not interned but still equal
        a, b = LogicVector.from_int(70_000, 32), LogicVector.from_int(70_000, 32)
        assert a == b

    def test_interned_vectors_are_immutable(self):
        with pytest.raises(AttributeError):
            bit(0).value = 1

    def test_one_bit_toggle_reuses_interned_values(self):
        sim = Simulator()
        sig = Signal("s", 1, init=0)
        sim.register_signal(sig)

        def toggler():
            for i in range(8):
                sig.next = (i + 1) & 1
                yield Timer(10)

        sim.fork(toggler())
        sim.run()
        assert sig.value is bit(0)

    def test_batched_clock_counts_value_changes(self):
        # clock edges are value changes, not process resumes
        sim = Simulator()
        clk = Clock("clk", MHz(100))
        sim.add_module(clk)
        sim.run(until=1000 * MHz(100))
        assert clk.cycles == 1000
        assert sim.stats.value_changes >= 2 * 1000
        assert sim.stats.changes_by_owner[clk] >= 2 * 1000

    def test_batched_clock_stops_at_until_boundary(self):
        sim = Simulator()
        clk = Clock("clk", MHz(100), start_high=True)
        sim.add_module(clk)
        period = MHz(100)
        # stop mid-batch, partway through a cycle
        sim.run(until=10 * period + period // 4)
        assert clk.cycles == 10
        assert clk.out.is_high  # started high, 10 full cycles later still high
        sim.run(until=10 * period + period // 2)
        assert clk.out.is_low  # half period later: toggled

    def test_fastpath_by_owner_attribution(self):
        sim = Simulator()
        top = Module("top")
        clk = Clock("clk", MHz(100), parent=top)
        sim.add_module(top)
        sim.run(until=100 * MHz(100))
        reports = fastpath_by_owner(top)
        assert clk.path in reports
        rep = reports[clk.path]
        assert rep.hits >= 200  # defined 1-bit toggles: all fast path
        assert rep.misses == 0
        assert rep.hit_rate == 1.0
