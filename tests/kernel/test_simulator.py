"""Unit tests for the delta-cycle scheduler, processes and triggers."""

import pytest

from repro.kernel import (
    NS,
    Clock,
    DeltaOverflowError,
    Event,
    FallingEdge,
    First,
    Join,
    MHz,
    Module,
    NullTrigger,
    ProcessError,
    RisingEdge,
    Signal,
    SimulationError,
    Simulator,
    Timer,
)


def test_timer_sequencing():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.time)
        yield Timer(10)
        log.append(sim.time)
        yield Timer(5)
        log.append(sim.time)

    sim.fork(proc())
    sim.run()
    assert log == [0, 10, 15]


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def a():
        yield Timer(10)
        log.append("a10")
        yield Timer(20)
        log.append("a30")

    def b():
        yield Timer(15)
        log.append("b15")
        yield Timer(5)
        log.append("b20")

    sim.fork(a())
    sim.fork(b())
    sim.run()
    assert log == ["a10", "b15", "b20", "a30"]


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    log = []

    def proc():
        while True:
            yield Timer(10)
            log.append(sim.time)

    sim.fork(proc())
    sim.run(until=25)
    assert log == [10, 20]
    assert sim.time == 25
    sim.run_for(10)
    assert log == [10, 20, 30]


def test_run_until_past_time_rejected():
    sim = Simulator()

    def proc():
        yield Timer(100)

    sim.fork(proc())
    sim.run(until=50)
    with pytest.raises(SimulationError):
        sim.run(until=20)


def test_nonblocking_update_semantics():
    """A write is not visible until the following delta cycle."""
    sim = Simulator()
    sig = Signal("s", 8, init=0)
    sim.register_signal(sig)
    seen = []

    def writer():
        sig.next = 42
        seen.append(sig.value.to_int())  # still old value in same delta
        yield NullTrigger()
        seen.append(sig.value.to_int())

    sim.fork(writer())
    sim.run()
    assert seen == [0, 42]


def test_last_write_wins_within_delta():
    sim = Simulator()
    sig = Signal("s", 8, init=0)
    sim.register_signal(sig)

    def writer():
        sig.next = 1
        sig.next = 2
        yield NullTrigger()

    sim.fork(writer())
    sim.run()
    assert sig.value.to_int() == 2
    assert sig.change_count == 1  # only one committed change


def test_rising_edge_trigger():
    sim = Simulator()
    sig = Signal("s", 1, init=0)
    sim.register_signal(sig)
    hits = []

    def waiter():
        while True:
            yield RisingEdge(sig)
            hits.append(sim.time)

    def driver():
        yield Timer(10)
        sig.next = 1
        yield Timer(10)
        sig.next = 0
        yield Timer(10)
        sig.next = 1

    sim.fork(waiter())
    sim.fork(driver())
    sim.run()
    assert hits == [10, 30]


def test_falling_edge_trigger():
    sim = Simulator()
    sig = Signal("s", 1, init=1)
    sim.register_signal(sig)
    hits = []

    def waiter():
        yield FallingEdge(sig)
        hits.append(sim.time)

    def driver():
        yield Timer(7)
        sig.next = 0

    sim.fork(waiter())
    sim.fork(driver())
    sim.run()
    assert hits == [7]


def test_edge_on_x_transition_counts_as_change_not_rise():
    """0 -> X must not fire a rising edge; X -> 1 must."""
    from repro.kernel import xbits

    sim = Simulator()
    sig = Signal("s", 1, init=0)
    sim.register_signal(sig)
    rises = []

    def waiter():
        while True:
            yield RisingEdge(sig)
            rises.append(sim.time)

    def driver():
        yield Timer(10)
        sig.next = xbits(1)
        yield Timer(10)
        sig.next = 1

    sim.fork(waiter())
    sim.fork(driver())
    sim.run()
    assert rises == [20]


def test_no_spurious_trigger_on_equal_write():
    sim = Simulator()
    sig = Signal("s", 1, init=0)
    sim.register_signal(sig)
    hits = []

    def waiter():
        while True:
            yield RisingEdge(sig)
            hits.append(sim.time)

    def driver():
        yield Timer(10)
        sig.next = 0  # no change
        yield Timer(10)
        sig.next = 1

    sim.fork(waiter())
    sim.fork(driver())
    sim.run()
    assert hits == [20]
    assert sig.change_count == 1


def test_first_trigger_timeout_path():
    sim = Simulator()
    sig = Signal("irq", 1, init=0)
    sim.register_signal(sig)
    outcome = []

    def waiter():
        fired = yield First(RisingEdge(sig), Timer(100))
        outcome.append(type(fired).__name__)

    sim.fork(waiter())
    sim.run()
    assert outcome == ["Timer"]


def test_first_trigger_edge_path():
    sim = Simulator()
    sig = Signal("irq", 1, init=0)
    sim.register_signal(sig)
    outcome = []

    def waiter():
        fired = yield First(RisingEdge(sig), Timer(100))
        outcome.append(type(fired).__name__)
        outcome.append(sim.time)

    def driver():
        yield Timer(30)
        sig.next = 1

    sim.fork(waiter())
    sim.fork(driver())
    sim.run()
    assert outcome == ["RisingEdge", 30]


def test_first_does_not_leak_edge_waiters():
    """Losing edge triggers must be disarmed (polling-loop hygiene)."""
    sim = Simulator()
    sig = Signal("irq", 1, init=0)
    sim.register_signal(sig)

    def waiter():
        for _ in range(50):
            yield First(RisingEdge(sig), Timer(10))

    sim.fork(waiter())
    sim.run()
    assert len(sig._edge_waiters["rise"]) == 0


def test_join_and_fork_result():
    sim = Simulator()
    results = []

    def child():
        yield Timer(25)
        return 99

    def parent():
        proc = sim.fork(child(), "child")
        yield Join(proc)
        results.append((sim.time, proc.result))

    sim.fork(parent())
    sim.run()
    assert results == [(25, 99)]


def test_yield_process_implies_join():
    sim = Simulator()
    done = []

    def child():
        yield Timer(5)

    def parent():
        yield sim.fork(child(), "child")
        done.append(sim.time)

    sim.fork(parent())
    sim.run()
    assert done == [5]


def test_join_already_finished_process():
    sim = Simulator()
    done = []

    def child():
        return 7
        yield  # pragma: no cover

    def parent():
        proc = sim.fork(child(), "child")
        yield Timer(10)
        yield Join(proc)
        done.append(proc.result)

    sim.fork(parent())
    sim.run()
    assert done == [7]


def test_event_wait_and_set():
    sim = Simulator()
    ev = Event("go")
    log = []

    def waiter():
        yield ev.wait()
        log.append(("woke", sim.time, ev.data))

    def setter():
        yield Timer(40)
        ev.set(sim, data="payload")

    sim.fork(waiter())
    sim.fork(setter())
    sim.run()
    assert log == [("woke", 40, "payload")]


def test_event_wakes_all_waiters():
    sim = Simulator()
    ev = Event("go")
    woke = []

    def waiter(i):
        yield ev.wait()
        woke.append(i)

    for i in range(3):
        sim.fork(waiter(i))

    def setter():
        yield Timer(1)
        ev.set(sim)

    sim.fork(setter())
    sim.run()
    assert sorted(woke) == [0, 1, 2]


def test_run_until_event():
    sim = Simulator()
    ev = Event("done")

    def proc():
        yield Timer(500)
        ev.set(sim)
        yield Timer(500)

    sim.fork(proc())
    assert sim.run_until_event(ev, timeout=1000)
    assert sim.time == 500


def test_run_until_event_timeout():
    sim = Simulator()
    ev = Event("never")

    def proc():
        while True:
            yield Timer(100)

    sim.fork(proc())
    assert not sim.run_until_event(ev, timeout=1000)
    assert sim.time == 1000


def test_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield Timer(10)
        raise ValueError("boom")

    sim.fork(bad(), "bad")
    with pytest.raises(ProcessError) as exc_info:
        sim.run()
    assert isinstance(exc_info.value.original, ValueError)


def test_process_yield_garbage_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.fork(bad(), "bad")
    with pytest.raises(ProcessError):
        sim.run()


def test_process_kill():
    sim = Simulator()
    log = []

    def victim():
        while True:
            yield Timer(10)
            log.append(sim.time)

    def killer(proc):
        yield Timer(35)
        proc.kill()

    p = sim.fork(victim())
    sim.fork(killer(p))
    sim.run()
    assert log == [10, 20, 30]
    assert p.finished


def test_delta_overflow_detection():
    """A zero-delay combinational loop must be caught, not spin forever."""
    from repro.kernel import Edge

    sim = Simulator()
    x = Signal("x", 1, init=0)
    sim.register_signal(x)

    def oscillate():
        while True:
            yield Edge(x)
            x.next = 0 if x.value.to_int() else 1

    def kick():
        x.next = 1
        yield Timer(1)

    sim.fork(oscillate())
    sim.fork(kick())
    with pytest.raises(DeltaOverflowError):
        sim.run()


def test_clock_cycles_and_frequency():
    sim = Simulator()
    clk = Clock("clk100", period=MHz(100))
    sim.add_module(clk)
    assert clk.frequency_mhz == pytest.approx(100.0)
    edges = []

    def counter():
        while True:
            yield RisingEdge(clk.out)
            edges.append(sim.time)

    sim.fork(counter())
    sim.run(until=100_000)  # 100ns = 10 cycles at 100MHz
    assert len(edges) == 10
    # edges evenly spaced by the period
    assert edges[1] - edges[0] == MHz(100)


def test_activity_accounting_by_owner():
    sim = Simulator()
    top = Module("top")
    busy = Module("busy", parent=top)
    idle = Module("idle", parent=top)
    sig_busy = busy.signal("s", 8)
    sig_idle = idle.signal("s", 8)

    def busy_proc():
        for i in range(100):
            sig_busy.next = i
            yield Timer(10)

    def idle_proc():
        sig_idle.next = 1
        yield Timer(1000)

    busy.process(lambda: busy_proc(), "busy")
    idle.process(lambda: idle_proc(), "idle")
    sim.add_module(top)
    sim.run()
    assert busy.activity()["events"] > idle.activity()["events"]
    assert top.activity()["events"] == (
        busy.activity()["events"] + idle.activity()["events"]
    )


def test_stats_snapshot_delta():
    sim = Simulator()
    sig = Signal("s", 8, init=0)
    sim.register_signal(sig)

    def proc():
        for i in range(10):
            sig.next = i + 1
            yield Timer(10)

    sim.fork(proc())
    sim.run(until=45)
    snap = sim.stats.snapshot()
    sim.run()
    diff = sim.stats.delta_from(snap)
    assert diff.value_changes == 10 - snap.value_changes
    assert diff.events > 0


def test_module_hierarchy_paths_and_find():
    top = Module("top")
    a = Module("a", parent=top)
    b = Module("b", parent=a)
    assert b.path == "top.a.b"
    assert top.find("a.b") is b
    with pytest.raises(KeyError):
        top.find("a.c")


def test_signal_force_bypasses_triggers():
    sim = Simulator()
    sig = Signal("s", 1, init=0)
    sim.register_signal(sig)
    hits = []

    def waiter():
        yield RisingEdge(sig)
        hits.append(sim.time)

    sim.fork(waiter())
    sig.force(1)
    sim.run_for(100)
    assert hits == []
    assert sig.value == 1
