"""Tests for region/module specifications."""

import pytest

from repro.core import ModuleSpec, RegionSpec


def test_module_spec_validation():
    ModuleSpec(0x1, "cie")
    with pytest.raises(ValueError):
        ModuleSpec(0x100, "too-big")
    with pytest.raises(ValueError):
        ModuleSpec(1, "")


def test_module_spec_frozen():
    spec = ModuleSpec(0x1, "cie")
    with pytest.raises(AttributeError):
        spec.name = "other"


def test_region_spec_lookup():
    spec = RegionSpec(0x1, "rr", [ModuleSpec(1, "cie"), ModuleSpec(2, "me")])
    assert spec.module_by_name("me").module_id == 2
    assert spec.module_by_id(1).name == "cie"
    with pytest.raises(KeyError):
        spec.module_by_name("nope")
    with pytest.raises(KeyError):
        spec.module_by_id(9)


def test_region_spec_validation():
    with pytest.raises(ValueError):
        RegionSpec(0x1, "rr", [])
    with pytest.raises(ValueError):
        RegionSpec(0x1, "", [ModuleSpec(1, "a")])
    with pytest.raises(ValueError):
        RegionSpec(0x100, "rr", [ModuleSpec(1, "a")])
    with pytest.raises(ValueError):
        RegionSpec(0x1, "rr", [ModuleSpec(1, "a"), ModuleSpec(1, "b")])
    with pytest.raises(ValueError):
        RegionSpec(0x1, "rr", [ModuleSpec(1, "a"), ModuleSpec(2, "a")])
