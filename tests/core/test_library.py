"""Tests for the ResimBuilder artifact-generation flow."""

import pytest

from repro.bus import PlbBus, PlbMemory
from repro.core import ModuleSpec, RegionSpec, ResimBuilder, ResimError
from repro.engines import CensusImageEngine, EngineRegs, MatchingEngine
from repro.kernel import Clock, MHz, Module, Simulator
from repro.reconfig import NoopInjector, RRSlot, decode_simb
from repro.reconfig.injector import XInjector


def make_slot(rr_id=0x1, parent=None):
    top = parent or Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", 4096, parent=top)
    bus.attach_slave(mem, 0, 4096)
    regs = EngineRegs(f"eregs{rr_id}", base=0x10 * rr_id, parent=top)
    cie = CensusImageEngine(f"cie{rr_id}", clock=clk, parent=top)
    me = MatchingEngine(f"me{rr_id}", clock=clk, parent=top)
    slot = RRSlot(
        f"rr{rr_id}", rr_id, bus.attach_master(f"rr{rr_id}"), regs,
        [cie, me], parent=top,
    )
    return top, slot


def spec(rr_id=0x1, name="video_rr"):
    return RegionSpec(rr_id, name, [ModuleSpec(0x1, "cie"), ModuleSpec(0x2, "me")])


def test_build_generates_artifacts():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot)
    artifacts = builder.build(parent=top)
    assert artifacts.icap.portals[0x1].slot is slot
    assert artifacts.portal("video_rr") is artifacts.portal(0x1)
    assert isinstance(artifacts.injector("video_rr"), XInjector)


def test_simb_for_by_names():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot)
    artifacts = builder.build(parent=top)
    words = artifacts.simb_for("video_rr", "me", payload_words=8)
    events = decode_simb(words)
    far = next(e for e in events if e.kind == "far")
    assert (far.rr_id, far.module_id) == (0x1, 0x2)
    by_id = artifacts.simb_for(0x1, 0x2, payload_words=8, seed=1)
    by_name = artifacts.simb_for("video_rr", "me", payload_words=8, seed=1)
    assert by_id == by_name


def test_unknown_region_or_module():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot)
    artifacts = builder.build(parent=top)
    with pytest.raises(ResimError):
        artifacts.region("nope")
    with pytest.raises(ResimError):
        artifacts.region(0x9)
    with pytest.raises(KeyError):
        artifacts.simb_for("video_rr", "nope")


def test_spec_slot_id_mismatch_rejected():
    top, slot = make_slot(rr_id=0x2)
    builder = ResimBuilder()
    with pytest.raises(ResimError):
        builder.add_region(spec(rr_id=0x1), slot)


def test_spec_module_set_mismatch_rejected():
    top, slot = make_slot()
    bad = RegionSpec(0x1, "rr", [ModuleSpec(0x1, "cie"), ModuleSpec(0x7, "ghost")])
    builder = ResimBuilder()
    with pytest.raises(ResimError):
        builder.add_region(bad, slot)


def test_duplicate_region_rejected():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot)
    with pytest.raises(ResimError):
        builder.add_region(spec(), slot)


def test_build_twice_rejected():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot)
    builder.build(parent=top)
    with pytest.raises(ResimError):
        builder.build(parent=top)
    with pytest.raises(ResimError):
        builder.add_region(spec(rr_id=0x1, name="x"), slot)


def test_empty_builder_rejected():
    with pytest.raises(ResimError):
        ResimBuilder().build()


def test_custom_injector_class():
    top, slot = make_slot()
    builder = ResimBuilder()
    builder.add_region(spec(), slot, injector_cls=NoopInjector)
    artifacts = builder.build(parent=top)
    assert isinstance(artifacts.injector("video_rr"), NoopInjector)


def test_two_regions_one_icap():
    """The ICAP artifact dispatches SimBs to the addressed region."""
    top = Module("top")
    _, slot1 = make_slot(rr_id=0x1, parent=top)
    _, slot2 = make_slot(rr_id=0x2, parent=top)
    builder = ResimBuilder()
    builder.add_region(spec(0x1, "rr_a"), slot1)
    builder.add_region(spec(0x2, "rr_b"), slot2)
    artifacts = builder.build(parent=top)
    sim = Simulator()
    sim.add_module(top)
    slot1.select(0x1)
    slot2.select(0x1)

    def feed():
        for w in artifacts.simb_for("rr_b", "me", payload_words=4):
            artifacts.icap.write_word(w)
        yield from ()

    sim.fork(feed())
    sim.run_for(1000)
    assert slot1.active_id == 0x1  # untouched
    assert slot2.active_id == 0x2  # reconfigured
    assert artifacts.portal("rr_b").reconfigurations == 1
    assert artifacts.portal("rr_a").reconfigurations == 0
