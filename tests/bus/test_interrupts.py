"""Tests for the interrupt controller."""

from repro.bus import DcrBus, InterruptController
from repro.kernel import Clock, MHz, Module, RisingEdge, Simulator, Timer


def make_intc(n_sources=3):
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    dcr = DcrBus("dcr", clk, parent=top)
    intc = InterruptController("intc", base=0x80, clock=clk, parent=top)
    dcr.attach(intc)
    sources = [top.signal(f"req{i}", 1, init=0) for i in range(n_sources)]
    for i, s in enumerate(sources):
        intc.connect_source(f"src{i}", s)
    sim.add_module(top)
    return sim, top, clk, dcr, intc, sources


def test_irq_raised_when_enabled_source_fires():
    sim, top, clk, dcr, intc, sources = make_intc()
    times = {}

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b111)

    def device():
        yield Timer(500_000)
        sources[1].next = 1
        yield Timer(50_000)
        sources[1].next = 0

    def observer():
        yield RisingEdge(intc.irq)
        times["irq"] = sim.time

    sim.fork(cpu())
    sim.fork(device())
    sim.fork(observer())
    sim.run(until=5_000_000)
    assert times["irq"] >= 500_000


def test_masked_source_does_not_raise_irq():
    sim, top, clk, dcr, intc, sources = make_intc()

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b001)  # only src0

    def device():
        yield Timer(500_000)
        sources[2].next = 1

    sim.fork(cpu())
    sim.fork(device())
    sim.run(until=5_000_000)
    assert intc.irq.value == 0
    # but it is latched as pending
    assert intc.pending_mask & 0b100


def test_ack_clears_pending_and_drops_irq():
    sim, top, clk, dcr, intc, sources = make_intc()
    log = []

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b111)
        yield RisingEdge(intc.irq)
        pending = yield from dcr.read(intc.addr_of("ISR"))
        log.append(pending)
        sources[0].next = 0  # device deasserts
        yield from dcr.write(intc.addr_of("ISR"), pending)  # ack
        # allow a few cycles for irq to drop
        for _ in range(4):
            yield RisingEdge(clk.out)
        log.append(intc.irq.value.to_int())

    def device():
        yield Timer(300_000)
        sources[0].next = 1

    sim.fork(cpu())
    sim.fork(device())
    sim.run(until=5_000_000)
    assert log[0] == 0b001
    assert log[1] == 0


def test_vector_register_returns_lowest_active():
    sim, top, clk, dcr, intc, sources = make_intc()
    vectors = []

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b111)
        yield RisingEdge(intc.irq)
        v = yield from dcr.read(intc.addr_of("IVR"))
        vectors.append(v)

    def device():
        yield Timer(200_000)
        sources[2].next = 1
        sources[1].next = 1

    sim.fork(cpu())
    sim.fork(device())
    sim.run(until=5_000_000)
    assert vectors == [1]


def test_vector_register_empty_value():
    sim, top, clk, dcr, intc, sources = make_intc()
    vectors = []

    def cpu():
        yield Timer(100_000)
        v = yield from dcr.read(intc.addr_of("IVR"))
        vectors.append(v)

    sim.fork(cpu())
    sim.run(until=5_000_000)
    assert vectors == [0xFFFF_FFFF]


def test_level_sensitive_relatch_if_not_deasserted():
    """Acking while the line is still high re-latches pending."""
    sim, top, clk, dcr, intc, sources = make_intc()

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b1)
        yield RisingEdge(intc.irq)
        yield from dcr.write(intc.addr_of("ISR"), 0b1)  # ack w/o deassert
        for _ in range(4):
            yield RisingEdge(clk.out)

    def device():
        yield Timer(200_000)
        sources[0].next = 1  # stays high

    sim.fork(cpu())
    sim.fork(device())
    sim.run(until=5_000_000)
    assert intc.pending_mask & 1
    assert intc.irq.value == 1


def test_interrupt_counter():
    sim, top, clk, dcr, intc, sources = make_intc()

    def device():
        for _ in range(3):
            yield Timer(100_000)
            sources[0].next = 1
            yield Timer(100_000)
            sources[0].next = 0
            # ack so the next edge is counted anew
            intc._ack(0b1)

    sim.fork(device())
    sim.run(until=5_000_000)
    assert intc.interrupts_raised == 3


def test_raised_by_source_partitions_the_total():
    """Per-source raise counts must sum to interrupts_raised and be
    keyed by the connected source names."""
    sim, top, clk, dcr, intc, sources = make_intc()
    period = clk.period

    def pulse(sig, times):
        for _ in range(times):
            sig.next = 1
            yield Timer(2 * period)
            sig.next = 0
            yield Timer(2 * period)

    def cpu():
        yield from dcr.write(intc.addr_of("IER"), 0b111)
        yield from pulse(sources[0], 2)
        # acknowledge so re-raises of the same source count again
        yield from dcr.write(intc.addr_of("ISR"), 0b111)
        yield from pulse(sources[0], 1)
        yield from pulse(sources[1], 1)

    sim.fork(cpu())
    sim.run(until=period * 200)
    assert intc.raised_by_source["src0"] == 2
    assert intc.raised_by_source["src1"] == 1
    assert intc.raised_by_source["src2"] == 0
    assert sum(intc.raised_by_source.values()) == intc.interrupts_raised
