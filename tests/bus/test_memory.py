"""Tests for the PLB memory model."""

import numpy as np
import pytest

from repro.bus import PlbMemory


def test_word_read_write():
    mem = PlbMemory("mem", 1024)
    mem.plb_write(0, 0x12345678)
    assert mem.plb_read(0) == 0x12345678
    assert mem.reads == 1 and mem.writes == 1


def test_write_masks_to_32_bits():
    mem = PlbMemory("mem", 1024)
    mem.plb_write(4, 0x1_FFFF_FFFF)
    assert mem.plb_read(4) == 0xFFFF_FFFF


def test_unaligned_access_rejected():
    mem = PlbMemory("mem", 1024)
    with pytest.raises(ValueError):
        mem.plb_read(2)
    with pytest.raises(ValueError):
        mem.plb_write(5, 0)


def test_out_of_range_rejected():
    mem = PlbMemory("mem", 1024)
    with pytest.raises(IndexError):
        mem.plb_read(1024)


def test_unaligned_size_rejected():
    with pytest.raises(ValueError):
        PlbMemory("mem", 1026)


def test_block_load_dump_roundtrip():
    mem = PlbMemory("mem", 4096)
    data = np.arange(100, dtype=np.uint32)
    mem.load_words(0x100, data)
    out = mem.dump_words(0x100, 100)
    assert np.array_equal(out, data)


def test_block_load_bounds_checked():
    mem = PlbMemory("mem", 64)
    with pytest.raises(IndexError):
        mem.load_words(0, np.zeros(17, dtype=np.uint32))
    with pytest.raises(IndexError):
        mem.dump_words(0, 17)


def test_fill():
    mem = PlbMemory("mem", 64)
    mem.fill(0xABCD)
    assert int(mem.words[3]) == 0xABCD
    mem.fill(0)
    assert int(mem.words.sum()) == 0


def test_dump_returns_copy():
    mem = PlbMemory("mem", 64)
    out = mem.dump_words(0, 4)
    out[0] = 99
    assert mem.plb_read(0) == 0
