"""Tests for the DCR daisy-chain bus."""

import pytest

from repro.bus import DcrBus, DcrError, DcrRegisterFile
from repro.kernel import Clock, MHz, Module, Simulator


def make_chain(n_nodes=3):
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    dcr = DcrBus("dcr", clk, parent=top)
    nodes = []
    for i in range(n_nodes):
        node = DcrRegisterFile(f"node{i}", base=0x100 * i, size=16, parent=top)
        node.add_register("ctrl", 0, init=0)
        node.add_register("status", 1, init=i)
        dcr.attach(node)
        nodes.append(node)
    sim.add_module(top)
    return sim, top, clk, dcr, nodes


def test_read_write_roundtrip():
    sim, top, clk, dcr, nodes = make_chain()
    result = []

    def cpu():
        yield from dcr.write(0x100, 0xCAFE)  # node1.ctrl
        val = yield from dcr.read(0x100)
        result.append(val)

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert result == [0xCAFE]
    assert nodes[1].peek("ctrl") == 0xCAFE


def test_each_node_readable():
    sim, top, clk, dcr, nodes = make_chain()
    result = []

    def cpu():
        for i in range(3):
            val = yield from dcr.read(0x100 * i + 1)  # status
            result.append(val)

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert result == [0, 1, 2]


def test_latency_scales_with_chain_length():
    """One cycle per hop: longer chains take longer per command."""
    durations = {}
    for n in (2, 6):
        sim, top, clk, dcr, nodes = make_chain(n)

        def cpu():
            t0 = sim.time
            yield from dcr.read(1)
            durations[n] = sim.time - t0

        sim.fork(cpu())
        sim.run(until=10_000_000)
    assert durations[6] > durations[2]


def test_unmapped_address_returns_x():
    sim, top, clk, dcr, nodes = make_chain()
    result = []

    def cpu():
        val = yield from dcr.read(0x999)
        result.append(val)

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert result[0].has_x


def test_corrupted_node_breaks_chain_for_downstream_reads():
    """The paper's isolation scenario: X in the ring poisons commands."""
    sim, top, clk, dcr, nodes = make_chain()
    result = []

    def cpu():
        nodes[1].set_corrupted(True)
        # node2 sits after the corruption point: unreachable
        val = yield from dcr.read(0x201)
        result.append(val)
        # node0 sits before it, but the response ring passes the break:
        val = yield from dcr.read(0x001)
        result.append(val)
        nodes[1].set_corrupted(False)
        val = yield from dcr.read(0x201)
        result.append(val)

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert result[0].has_x
    assert result[1].has_x
    assert result[2] == 2
    assert dcr.chain_break_observed >= 2


def test_corrupted_node_loses_downstream_writes():
    sim, top, clk, dcr, nodes = make_chain()

    def cpu():
        nodes[0].set_corrupted(True)
        yield from dcr.write(0x100, 0xAA)  # node1 after break: lost
        nodes[0].set_corrupted(False)
        yield from dcr.write(0x200, 0xBB)  # now fine

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert nodes[1].peek("ctrl") == 0
    assert nodes[2].peek("ctrl") == 0xBB


def test_write_before_break_point_lands():
    sim, top, clk, dcr, nodes = make_chain()

    def cpu():
        nodes[2].set_corrupted(True)
        yield from dcr.write(0x000, 0x77)  # node0 before break
        nodes[2].set_corrupted(False)

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert nodes[0].peek("ctrl") == 0x77


def test_register_callbacks():
    sim, top, clk, dcr, nodes = make_chain()
    seen = []
    nodes[0]._on_write[0] = seen.append
    counter = {"n": 0}

    def bump():
        counter["n"] += 1
        return counter["n"]

    nodes[0]._on_read[1] = bump
    result = []

    def cpu():
        yield from dcr.write(0, 5)
        a = yield from dcr.read(1)
        b = yield from dcr.read(1)
        result.extend([a, b])

    sim.fork(cpu())
    sim.run(until=10_000_000)
    assert seen == [5]
    assert result == [1, 2]


def test_overlapping_node_ranges_rejected():
    sim, top, clk, dcr, nodes = make_chain()
    bad = DcrRegisterFile("bad", base=0x105, size=16)
    with pytest.raises(ValueError):
        dcr.attach(bad)


def test_duplicate_register_offset_rejected():
    node = DcrRegisterFile("n", base=0, size=16)
    node.add_register("a", 3)
    with pytest.raises(ValueError):
        node.add_register("b", 3)


def test_register_offset_beyond_size_rejected():
    node = DcrRegisterFile("n", base=0, size=4)
    with pytest.raises(ValueError):
        node.add_register("a", 4)


def test_unknown_register_access_raises():
    node = DcrRegisterFile("n", base=0, size=16)
    node.add_register("a", 0)
    with pytest.raises(DcrError):
        node.dcr_read(5)
    with pytest.raises(DcrError):
        node.dcr_write(5, 1)


def test_addr_of_and_backdoor():
    node = DcrRegisterFile("n", base=0x40, size=16)
    node.add_register("a", 2, init=9)
    assert node.addr_of("a") == 0x42
    assert node.peek("a") == 9
    node.poke("a", 11)
    assert node.peek("a") == 11


def test_chain_order():
    sim, top, clk, dcr, nodes = make_chain()
    assert dcr.chain_order() == ["node0", "node1", "node2"]
