"""Tests for the PLB arbitrated system bus."""

import pytest

from repro.bus import BusProtocolError, PlbBus, PlbMemory
from repro.kernel import Clock, MHz, Module, Simulator


def make_system(n_masters=1, mem_kb=16, arbitrated=True):
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", mem_kb * 1024, parent=top)
    bus.attach_slave(mem, base=0x1000_0000, size=mem_kb * 1024)
    ports = [
        bus.attach_master(f"m{i}", priority=0, arbitrated=arbitrated)
        for i in range(n_masters)
    ]
    sim.add_module(top)
    return sim, top, clk, bus, mem, ports


def test_single_word_write_read():
    sim, top, clk, bus, mem, (port,) = make_system()
    result = []

    def master():
        yield from port.write(0x1000_0000, 0xDEADBEEF)
        data = yield from port.read(0x1000_0000)
        result.append(data)

    sim.fork(master())
    sim.run(until=10_000_000)
    assert result == [0xDEADBEEF]
    assert mem.words[0] == 0xDEADBEEF


def test_burst_write_read():
    sim, top, clk, bus, mem, (port,) = make_system()
    result = []

    def master():
        yield from port.write_burst(0x1000_0100, list(range(16)))
        words = yield from port.read_burst(0x1000_0100, 16)
        result.append(words)

    sim.fork(master())
    sim.run(until=10_000_000)
    assert result[0] == list(range(16))


def test_burst_limit_enforced():
    sim, top, clk, bus, mem, (port,) = make_system()
    errors = []

    def master():
        try:
            yield from port.read_burst(0x1000_0000, 17)
        except BusProtocolError as e:
            errors.append(str(e))

    sim.fork(master())
    sim.run(until=1_000_000)
    assert errors and "17" in errors[0]


def test_unaligned_address_rejected():
    sim, top, clk, bus, mem, (port,) = make_system()
    errors = []

    def master():
        try:
            yield from port.read(0x1000_0002)
        except BusProtocolError:
            errors.append("unaligned")

    sim.fork(master())
    sim.run(until=1_000_000)
    assert errors == ["unaligned"]


def test_decode_failure_counts_protocol_error_and_returns_x():
    sim, top, clk, bus, mem, (port,) = make_system()
    result = []

    def master():
        data = yield from port.read(0x9000_0000)
        result.append(data)

    sim.fork(master())
    sim.run(until=1_000_000)
    assert bus.protocol_errors == 1
    assert result[0].has_x


def test_transfer_takes_cycle_accurate_time():
    """arb(1) + addr(1) + wait(1) + 4 beats = 7 bus cycles for the burst."""
    sim, top, clk, bus, mem, (port,) = make_system()
    times = []

    def master():
        t0 = sim.time
        yield from port.read_burst(0x1000_0000, 4)
        times.append(sim.time - t0)

    sim.fork(master())
    sim.run(until=10_000_000)
    period = MHz(100)
    cycles = times[0] / period
    # allow an extra cycle of completion-event skew
    assert 6 <= cycles <= 9


def test_burst_is_faster_per_word_than_singles():
    sim, top, clk, bus, mem, (port,) = make_system()
    durations = {}

    def master():
        t0 = sim.time
        yield from port.read_burst(0x1000_0000, 16)
        durations["burst"] = sim.time - t0
        t0 = sim.time
        for i in range(16):
            yield from port.read(0x1000_0000 + 4 * i)
        durations["singles"] = sim.time - t0

    sim.fork(master())
    sim.run(until=100_000_000)
    assert durations["burst"] < durations["singles"] / 2


def test_two_masters_share_bandwidth_fairly():
    sim, top, clk, bus, mem, ports = make_system(n_masters=2)
    done = {}

    def master(i, port):
        for k in range(10):
            yield from port.write(0x1000_0000 + 0x100 * i + 4 * k, i * 100 + k)
        done[i] = sim.time

    for i, port in enumerate(ports):
        sim.fork(master(i, port))
    sim.run(until=100_000_000)
    assert set(done) == {0, 1}
    # both progressed: completion times within 3x of each other
    assert max(done.values()) < 3 * min(done.values())
    # all data landed
    assert mem.words[0] == 0
    assert mem.words[(0x100 + 4) // 4] == 101


def test_priority_master_wins():
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", 4096, parent=top)
    bus.attach_slave(mem, base=0, size=4096)
    lo = bus.attach_master("lo", priority=0)
    hi = bus.attach_master("hi", priority=5)
    sim.add_module(top)
    finished = []

    def flood(name, port):
        for k in range(20):
            yield from port.write(4 * k, k)
        finished.append(name)

    sim.fork(flood("lo", lo))
    sim.fork(flood("hi", hi))
    sim.run(until=100_000_000)
    assert finished[0] == "hi"


def test_unarbitrated_sole_master_works():
    """Point-to-point mode is legal on a dedicated segment (original design)."""
    sim, top, clk, bus, mem, (port,) = make_system(n_masters=1, arbitrated=False)
    result = []

    def master():
        yield from port.write(0x1000_0000, 0x1234)
        data = yield from port.read(0x1000_0000)
        result.append(data)

    sim.fork(master())
    sim.run(until=10_000_000)
    assert result == [0x1234]
    assert bus.protocol_errors == 0


def test_unarbitrated_on_shared_bus_corrupts():
    """bug.dpr.4 mechanism: p2p master on a shared segment collides."""
    sim, top, clk, bus, mem, ports = make_system(n_masters=2, arbitrated=False)
    result = []

    def master():
        yield from ports[0].write(0x1000_0000, 0x1234)
        data = yield from ports[0].read(0x1000_0000)
        result.append(data)

    sim.fork(master())
    sim.run(until=10_000_000)
    assert bus.protocol_errors >= 1
    assert result[0].has_x  # read data is corrupted
    assert mem.words[0] == 0  # write was lost


def test_overlapping_slave_mapping_rejected():
    sim, top, clk, bus, mem, ports = make_system()
    other = PlbMemory("mem2", 4096)
    with pytest.raises(ValueError):
        bus.attach_slave(other, base=0x1000_0800, size=4096)


def test_bus_signals_toggle_during_traffic():
    sim, top, clk, bus, mem, (port,) = make_system()

    def master():
        yield from port.write_burst(0x1000_0000, [1, 2, 3, 4])

    sim.fork(master())
    sim.run(until=10_000_000)
    assert bus.sig_addr.change_count >= 1
    assert bus.sig_data.change_count >= 4
    assert bus.sig_valid.change_count >= 2


def test_utilization_counters():
    sim, top, clk, bus, mem, (port,) = make_system()

    def master():
        yield from port.write_burst(0x1000_0000, [0] * 8)
        yield from port.read(0x1000_0000)

    sim.fork(master())
    sim.run(until=10_000_000)
    assert bus.utilization_beats() == {"m0": 9}
    assert bus.total_transactions == 2
    assert bus.total_beats == 9
