"""Documentation hygiene as part of tier-1: links resolve, modules documented.

Thin pytest wrapper over ``tools/check_docs.py`` so doc rot fails the
normal test run, not only the dedicated CI job.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


checker = _load_checker()


def test_markdown_corpus_nonempty():
    files = checker.markdown_files()
    names = {f.name for f in files}
    assert "README.md" in names
    assert "architecture.md" in names and "tracing.md" in names
    assert "paper-mapping.md" in names


def test_internal_links_resolve():
    assert checker.check_links() == []


def test_public_modules_have_docstrings():
    assert checker.check_docstrings() == []


def test_cli_entrypoint_exit_status(capsys):
    assert checker.main() == 0
    assert "OK" in capsys.readouterr().out
