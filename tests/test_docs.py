"""Documentation hygiene as part of tier-1: links resolve, modules documented.

Thin pytest wrapper over ``tools/check_docs.py`` so doc rot fails the
normal test run, not only the dedicated CI job.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


checker = _load_checker()


def test_markdown_corpus_nonempty():
    files = checker.markdown_files()
    names = {f.name for f in files}
    assert "README.md" in names
    assert "architecture.md" in names and "tracing.md" in names
    assert "paper-mapping.md" in names


def test_internal_links_resolve():
    assert checker.check_links() == []


def test_public_modules_have_docstrings():
    assert checker.check_docstrings() == []


def test_documented_cli_flags_exist():
    assert checker.check_cli_flags() == []


def test_cli_options_cover_all_subcommands():
    options = checker.cli_options()
    for sub in ("run", "bench", "campaign", "soak", "fuzz", "trace"):
        assert sub in options
    assert "--lanes" in options["campaign"]
    assert "--lanes" in options["soak"]
    assert "--lanes" in options["fuzz"]
    assert "--lanes-bench" in options["bench"]


def test_extract_cli_refs_attribution():
    refs = checker.extract_cli_refs(
        "PYTHONPATH=src python -m repro fuzz --budget 4 --lanes=4 "
        "&& python -m repro bench --check"
    )
    assert refs == [("fuzz", ["--budget", "--lanes"]), ("bench", ["--check"])]


def test_stale_flag_would_be_caught():
    options = checker.cli_options()
    [(sub, flags)] = checker.extract_cli_refs("repro campaign --no-such-flag")
    assert sub in options
    assert flags == ["--no-such-flag"]
    assert flags[0] not in options[sub]


def test_prose_is_not_scanned_for_flags(tmp_path):
    md = tmp_path / "x.md"
    md.write_text("the repro campaign --bogus flag is prose, not code\n")
    assert list(checker.iter_code_texts(md)) == []


def test_cli_entrypoint_exit_status(capsys):
    assert checker.main() == 0
    assert "OK" in capsys.readouterr().out
