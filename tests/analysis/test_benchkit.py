"""Tests for the kernel-throughput harness and `repro bench`."""

import json

import pytest

from repro.analysis import benchkit
from repro.cli import main

# tiny workloads so the harness tests stay fast
_TINY = {"clock_toggle": 200, "signal_update": 50, "edge_wait": 50,
         "plb_burst": 2}


def test_workloads_return_their_work_counts():
    assert benchkit.bench_clock_toggle(200) == 200
    assert benchkit.bench_signal_update(50) == 50
    assert benchkit.bench_edge_wait(50) == 50
    assert benchkit.bench_plb_burst(2) == 32


def test_measure_selected_kernels(monkeypatch):
    monkeypatch.setitem(
        benchkit.KERNELS, "clock_toggle",
        (
            lambda backend="interp": benchkit.bench_clock_toggle(
                200, backend=backend
            ),
            "cycles",
        ),
    )
    results = benchkit.measure(repeats=1, kernels=["clock_toggle"])
    assert set(results) == {"clock_toggle"}
    r = results["clock_toggle"]
    assert r["work"] == 200 and r["unit"] == "cycles"
    assert r["best_s"] > 0 and r["per_sec"] > 0


def test_baseline_round_trip(tmp_path):
    results = {
        "clock_toggle": {
            "work": 100, "unit": "cycles", "best_s": 0.5, "per_sec": 200.0,
        }
    }
    path = tmp_path / "BENCH_kernel.json"
    benchkit.write_baseline(results, path)
    loaded = benchkit.load_baseline(path)
    assert loaded["clock_toggle"]["per_sec"] == 200.0


def test_baseline_records_backend(tmp_path):
    results = {
        "clock_toggle": {
            "work": 100, "unit": "cycles", "best_s": 0.5, "per_sec": 200.0,
        }
    }
    path = tmp_path / "BENCH_kernel_codegen.json"
    benchkit.write_baseline(results, path, backend="codegen")
    assert json.loads(path.read_text())["backend"] == "codegen"
    assert benchkit.baseline_backend(path) == "codegen"
    # the kernels mapping loads regardless of which backend produced it
    assert benchkit.load_baseline(path)["clock_toggle"]["per_sec"] == 200.0


def test_pre_backend_baseline_still_loads(tmp_path):
    """Files written before the backend field existed keep working."""
    path = tmp_path / "old.json"
    path.write_text(json.dumps({
        "schema": 1,
        "kernels": {"clock_toggle": {"per_sec": 10.0}},
    }))
    assert benchkit.load_baseline(path)["clock_toggle"]["per_sec"] == 10.0
    assert benchkit.baseline_backend(path) == "interp"


def test_default_baseline_path_per_backend():
    assert benchkit.default_baseline_path("interp") == benchkit.DEFAULT_BASELINE
    assert (
        benchkit.default_baseline_path("codegen")
        == benchkit.DEFAULT_CODEGEN_BASELINE
    )


def test_load_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "kernels": {}}))
    with pytest.raises(ValueError):
        benchkit.load_baseline(path)


def test_compare_flags_regressions():
    base = {"a": {"per_sec": 100.0}, "b": {"per_sec": 100.0},
            "missing": {"per_sec": 1.0}}
    now = {"a": {"per_sec": 85.0}, "b": {"per_sec": 79.0}}
    rows = benchkit.compare(now, base, tolerance=0.20)
    by_name = {r["name"]: r for r in rows}
    assert set(by_name) == {"a", "b"}  # kernels absent from current skipped
    assert by_name["a"]["ok"] and not by_name["b"]["ok"]
    assert by_name["b"]["ratio"] == pytest.approx(0.79)


def _patch_tiny_kernels(monkeypatch):
    for name, n in _TINY.items():
        fn = benchkit.KERNELS[name][0]
        unit = benchkit.KERNELS[name][1]
        monkeypatch.setitem(
            benchkit.KERNELS, name,
            (
                lambda fn=fn, n=n, backend="interp": fn(n, backend=backend),
                unit,
            ),
        )


def test_cli_bench_update_then_check_passes(tmp_path, monkeypatch, capsys):
    _patch_tiny_kernels(monkeypatch)
    baseline = tmp_path / "BENCH_kernel.json"
    assert main(["bench", "--update", "--repeats", "1",
                 "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    out = capsys.readouterr().out
    assert "baseline written" in out

    assert main(["bench", "--check", "--repeats", "2",
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out


def test_cli_bench_check_fails_on_regression(tmp_path, monkeypatch, capsys):
    _patch_tiny_kernels(monkeypatch)
    baseline = tmp_path / "BENCH_kernel.json"
    results = benchkit.measure(repeats=1)
    # pretend the committed baseline was 10x faster than this machine
    for r in results.values():
        r["per_sec"] *= 10
    benchkit.write_baseline(results, baseline)
    code = main(["bench", "--check", "--repeats", "1",
                 "--baseline", str(baseline)])
    assert code == 1
    err = capsys.readouterr().err
    assert "regressed" in err


def test_cli_bench_check_without_baseline(tmp_path, monkeypatch, capsys):
    _patch_tiny_kernels(monkeypatch)
    code = main(["bench", "--check", "--repeats", "1",
                 "--baseline", str(tmp_path / "nope.json")])
    assert code == 2
    assert "no baseline" in capsys.readouterr().err


def test_cli_bench_json_output(monkeypatch, capsys):
    _patch_tiny_kernels(monkeypatch)
    assert main(["bench", "--json", "--repeats", "1",
                 "--kernel", "clock_toggle"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "clock_toggle" in doc and doc["clock_toggle"]["per_sec"] > 0


def test_cli_bench_unknown_kernel(capsys):
    assert main(["bench", "--kernel", "bogus", "--repeats", "1"]) == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_measure_lanes_reports_parity_checked_speedup():
    result = benchkit.measure_lanes(lanes=3, scenarios=6, repeats=1)
    assert result["scenarios"] == 6 and result["lanes"] == 3
    assert result["parity_ok"] is True
    assert result["scalar"]["per_sec"] > 0
    assert result["laned_warm"]["per_sec"] > 0
    assert result["speedup_warm"] > 0
    stats = result["cache_stats"]["lane_blocks"]
    assert stats["lanes"] == 6 and stats["vectorized"] == 6


def test_lanes_baseline_round_trip(tmp_path):
    result = {
        "scenarios": 6, "cycles": 512, "lanes": 3, "unit": "scenarios",
        "scalar": {"best_s": 0.1, "per_sec": 60.0},
        "laned_cold": {"best_s": 0.01, "per_sec": 600.0},
        "laned_warm": {"best_s": 0.01, "per_sec": 600.0},
        "speedup_cold": 10.0, "speedup_warm": 10.0,
        "parity_ok": True, "cache_stats": {},
    }
    path = tmp_path / "BENCH_lanes.json"
    benchkit.write_lanes_baseline(result, path)
    assert benchkit.load_lanes_baseline(path)["speedup_warm"] == 10.0


def test_compare_lanes_gates_absolute_floor_and_baseline():
    current = {
        "scalar": {"per_sec": 50.0},
        "laned_warm": {"per_sec": 100.0},
        "speedup_warm": 2.0,
    }
    baseline = {
        "scalar": {"per_sec": 50.0},
        "laned_warm": {"per_sec": 200.0},
    }
    rows = benchkit.compare_lanes(current, baseline, tolerance=0.20)
    by_name = {r["name"]: r for r in rows}
    assert not by_name["lane_speedup"]["ok"]  # 2.0x < the 3x floor
    assert by_name["lanes:scalar"]["ok"]
    assert not by_name["lanes:laned_warm"]["ok"]  # lost half vs baseline
    # no baseline: only the absolute floor row
    assert [r["name"] for r in benchkit.compare_lanes(current)] == [
        "lane_speedup"
    ]


def test_cli_lanes_bench_update_then_check(tmp_path, capsys):
    baseline = tmp_path / "BENCH_lanes.json"
    assert main(["bench", "--lanes-bench", "--lanes", "3", "--repeats", "1",
                 "--update", "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    assert "lane baseline written" in capsys.readouterr().out
    assert main(["bench", "--lanes-bench", "--lanes", "3", "--repeats", "1",
                 "--check", "--baseline", str(baseline),
                 "--tolerance", "0.95"]) == 0
    assert "lane_speedup" in capsys.readouterr().out


def test_cli_bench_codegen_backend(tmp_path, monkeypatch, capsys):
    """--backend codegen measures, records, and checks its own baseline."""
    _patch_tiny_kernels(monkeypatch)
    baseline = tmp_path / "BENCH_kernel_codegen.json"
    assert main(["bench", "--update", "--repeats", "1",
                 "--backend", "codegen", "--baseline", str(baseline)]) == 0
    assert json.loads(baseline.read_text())["backend"] == "codegen"
    assert main(["bench", "--check", "--repeats", "1",
                 "--backend", "codegen", "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "codegen backend" in out
