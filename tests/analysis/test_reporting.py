"""Tests for table/series rendering."""

import pytest

from repro.analysis import Series, format_ps, format_table


def test_format_table_alignment():
    text = format_table(
        ["Name", "Value"],
        [("alpha", 1), ("bb", 22_000)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(l) == len(lines[1]) for l in lines[1:])
    assert "22,000" in text
    assert "alpha" in text


def test_format_table_floats():
    text = format_table(["x"], [(0.12345,), (1.5,), (12345.6,), (0.0,)])
    assert "0.1235" in text or "0.1234" in text
    assert "1.50" in text
    assert "12,346" in text
    assert " 0 |" in text  # exact zero renders as plain 0, right-aligned


def test_format_table_row_width_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [(1,)])


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "| a" in text


def test_format_ps_units():
    assert format_ps(500) == "500 ps"
    assert format_ps(1500) == "1.5 ns"
    assert format_ps(2_500_000) == "2.50 us"
    assert format_ps(3_000_000_000) == "3.000 ms"


def test_series():
    s = Series("loc")
    s.add(1, 100)
    s.add(2, 250)
    text = s.render("week", "loc")
    assert "loc" in text and "250" in text
    assert s.x == [1, 2] and s.y == [100, 250]
