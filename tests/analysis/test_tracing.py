"""Tests for the structured trace substrate and its exporters."""

import json

import pytest

from repro.analysis.tracing import (
    BUILTIN_CATEGORIES,
    NULL_SPAN,
    TRACE_PID,
    Tracer,
    counter_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.analysis.reporting import format_trace_timeline
from repro.kernel import Simulator, Timer
from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig

TINY = dict(width=48, height=32, simb_payload_words=128, video_backdoor=True)


def run_traced(**overrides):
    cfg = SystemConfig(tracing=True, **TINY, **overrides)
    system = AutoVisionSystem(cfg)
    software = AutoVisionSoftware(system)
    sim = system.build()
    sim.fork(software.run(1), "software.main", owner=software)
    sim.run_until_event(software.run_complete, timeout=5_000_000_000_000)
    assert software.finished and not software.anomalies
    sim.tracer.finalize()
    return sim, software


@pytest.fixture(scope="module")
def traced():
    return run_traced()


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracerCore:
    def test_simulator_has_no_tracer_by_default(self):
        assert Simulator().tracer is None

    def test_buses_have_no_observers_without_tracing(self):
        system = AutoVisionSystem(SystemConfig(**TINY))
        sim = system.build()
        assert sim.tracer is None
        assert system.bus._observers == []
        assert system.dcr._observers == []

    def test_span_records_simulated_duration(self):
        sim = Simulator()
        tr = Tracer().attach(sim)
        assert sim.tracer is tr

        def proc():
            with tr.span("kernel", "step", detail=1):
                yield Timer(1000)

        sim.fork(proc(), "p")
        sim.run()
        (ev,) = [e for e in tr.events if e.name == "step"]
        assert ev.ph == "X" and ev.ts_ps == 0 and ev.dur_ps == 1000
        assert ev.args == {"detail": 1}

    def test_category_filter_returns_null_span(self):
        tr = Tracer(categories={"reconfig"})
        assert tr.begin("kernel", "x") is NULL_SPAN
        tr.instant("firmware", "y")
        tr.counter("bus", "z", n=1)
        assert tr.events == []
        s = tr.begin("reconfig", "real")
        s.end()
        assert len(tr.events) == 1

    def test_tracks_get_stable_distinct_tids(self):
        tr = Tracer()
        base = dict(tr.track_names())
        for i, cat in enumerate(BUILTIN_CATEGORIES, start=1):
            assert base[i] == cat
        a = tr._tid_for("bus", "plb")
        b = tr._tid_for("bus", "dcr")
        assert a != b
        assert tr._tid_for("bus", "plb") == a

    def test_finalize_closes_open_spans(self):
        tr = Tracer()
        tr.begin("firmware", "left-open")
        tr.finalize()
        (ev,) = tr.events
        assert ev.args["unterminated"] is True

    def test_warning_keeps_tuple_api_and_emits_instant(self):
        sim = Simulator()
        tr = Tracer().attach(sim)
        sim.warn("something odd")
        assert sim.warnings == [(0, "something odd")]
        (ev,) = tr.events
        assert ev.ph == "i" and ev.cat == "warning"
        assert ev.args == {"message": "something odd"}
        assert ev.ts_ps == sim.warnings[0][0]

    def test_warn_without_tracer_unchanged(self):
        sim = Simulator()
        sim.warn("plain")
        assert sim.warnings == [(0, "plain")]


# ----------------------------------------------------------------------
# Instrumented system run
# ----------------------------------------------------------------------
class TestSystemTrace:
    def test_all_builtin_categories_emitted(self, traced):
        sim, _ = traced
        cats = {e.cat for e in sim.tracer.events}
        assert {"kernel", "bus", "reconfig", "firmware"} <= cats

    def test_kernel_counters_sampled(self, traced):
        sim, _ = traced
        counters = [e for e in sim.tracer.events if e.ph == "C"]
        names = {e.name for e in counters}
        assert "scheduler" in names and "fastpath" in names
        sched = [e for e in counters if e.name == "scheduler"][-1]
        assert sched.args["resumes"] > 0
        assert sched.args["deltas"] >= sched.args["timesteps"] > 0

    def test_firmware_phase_spans_match_phase_log(self, traced):
        sim, software = traced
        spans = [
            e for e in sim.tracer.events
            if e.ph == "X" and e.cat == "firmware"
            and e.name in ("video_in", "cie", "dpr", "me", "isr_draw")
        ]
        assert len(spans) == len(software.phase_log)
        logged = sorted((n, s, e) for n, s, e in software.phase_log)
        traced_spans = sorted(
            (e.name, e.ts_ps, e.ts_ps + e.dur_ps) for e in spans
        )
        assert traced_spans == logged

    def test_reconfig_lifecycle_order(self, traced):
        sim, _ = traced
        events = [
            e for e in sim.tracer.sorted_events() if e.cat == "reconfig"
        ]
        names = [e.name for e in events]
        # one frame = two reconfigurations (CIE->ME, ME->CIE)
        assert names.count("icap-transfer") == 2
        assert names.count("during-reconfig") == 2
        first = names.index("portal:far")
        seq = [n for n in names[first:] if n.startswith("portal:")][:4]
        assert seq == [
            "portal:far", "portal:inject_start", "portal:swap",
            "portal:desync",
        ]

    def test_during_reconfig_nests_inside_transfer(self, traced):
        sim, _ = traced
        evs = sim.tracer.events
        transfers = [e for e in evs if e.name == "icap-transfer"]
        durings = [e for e in evs if e.name == "during-reconfig"]
        for dur in durings:
            assert any(
                t.ts_ps <= dur.ts_ps
                and dur.ts_ps + dur.dur_ps <= t.ts_ps + t.dur_ps
                for t in transfers
            ), "during-reconfig span must sit inside an icap-transfer span"
        for t in transfers:
            assert t.args["bytes"] > 0
            assert t.args["words_drained"] == t.args["bytes"] // 4
            assert t.args["error"] is False

    def test_during_reconfig_outcome_is_swap(self, traced):
        sim, _ = traced
        for e in sim.tracer.events:
            if e.name == "during-reconfig":
                assert e.args["outcome"] == "swap"

    def test_isolation_instants_bracket_transfer(self, traced):
        sim, _ = traced
        names = [
            e.name for e in sim.tracer.sorted_events() if e.cat == "reconfig"
        ]
        armed = names.index("isolation-armed")
        released = names.index("isolation-released")
        transfer = names.index("portal:inject_start")
        assert armed < transfer < released

    def test_bus_spans_cover_both_buses(self, traced):
        sim, _ = traced
        bus_names = {e.name for e in sim.tracer.events if e.cat == "bus"}
        assert {"dcr:rd", "dcr:wr", "plb:rd", "plb:wr"} <= bus_names

    def test_retry_attempts_traced(self):
        sim, software = run_traced(
            fault_tolerance=True, max_reconfig_attempts=3
        )
        evs = sim.tracer.events
        attempts = [e for e in evs if e.name == "attempt"]
        reconfigs = [e for e in evs if e.name == "reconfigure"]
        # clean run: one attempt per reconfiguration, all successful
        assert len(reconfigs) == 2
        assert len(attempts) == 2
        assert all(a.args == {"n": 1, "label": a.args["label"], "ok": True}
                   for a in attempts)
        assert all(r.args["outcome"] == "ok" for r in reconfigs)

    def test_crc_ok_instants_with_fault_tolerance(self):
        sim, _ = run_traced(fault_tolerance=True)
        crc_oks = [e for e in sim.tracer.events if e.name == "crc-ok"]
        assert len(crc_oks) == 2  # one per reconfiguration


# ----------------------------------------------------------------------
# Chrome exporter
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_event_schema(self, traced):
        sim, _ = traced
        doc = to_chrome_trace(sim.tracer)
        assert doc["otherData"]["clock"] == "simulated-ps"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        names = {m["args"]["name"] for m in metas}
        assert "repro-sim" in names and "firmware" in names
        assert "bus:plb" in names and "firmware:drawer" in names
        for e in events:
            assert e["pid"] == TRACE_PID
            assert e["ph"] in ("M", "X", "i", "C")
            if e["ph"] == "M":
                continue
            assert isinstance(e["ts"], float)
            assert e["tid"] >= 1 and e["cat"]
            if e["ph"] == "X":
                assert e["dur"] == e["args"]["dur_ps"] / 1e6
                assert e["ts"] == e["args"]["ts_ps"] / 1e6
            elif e["ph"] == "i":
                assert e["s"] == "t"

    def test_wall_clock_excluded_by_default(self, traced):
        sim, _ = traced
        doc = to_chrome_trace(sim.tracer)
        assert not any(
            "wall_ns" in e.get("args", {}) for e in doc["traceEvents"]
        )
        doc_wall = to_chrome_trace(sim.tracer, include_wall=True)
        assert any(
            "wall_ns" in e.get("args", {}) for e in doc_wall["traceEvents"]
        )

    def test_span_events_nest_in_lifecycle_order(self, traced):
        sim, _ = traced
        doc = to_chrome_trace(sim.tracer)
        # within one tid, Chrome requires nesting: sorted by ts, a span
        # must end before its predecessor does if they overlap
        by_tid = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                by_tid.setdefault(e["tid"], []).append(e)
        checked = 0
        for spans in by_tid.values():
            stack = []
            for e in spans:  # exporter emits in sorted order
                start, end = e["args"]["ts_ps"], (
                    e["args"]["ts_ps"] + e["args"]["dur_ps"]
                )
                while stack and stack[-1] <= start:
                    stack.pop()
                if stack:
                    assert end <= stack[-1], (
                        f"span {e['name']} overlaps its parent"
                    )
                    checked += 1
                stack.append(end)
        assert checked > 0  # the trace actually contains nested spans

    def test_file_output_deterministic_for_fixed_seed(self, tmp_path):
        paths = []
        for i in range(2):
            sim, _ = run_traced()
            path = tmp_path / f"t{i}.json"
            write_chrome_trace(sim.tracer, path)
            paths.append(path)
        a, b = (p.read_bytes() for p in paths)
        assert a == b  # byte-identical across runs
        json.loads(a)  # and valid JSON


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
class TestReporting:
    def test_counter_summary(self, traced):
        sim, _ = traced
        summary = counter_summary(sim.tracer)
        assert summary["firmware"]["spans"] > 0
        assert summary["firmware"]["span_ps"] > 0
        assert summary["reconfig"]["instants"] > 0
        assert summary["kernel"]["counters"]["scheduler"]["resumes"] > 0

    def test_timeline_renders_nested(self, traced):
        sim, _ = traced
        text = format_trace_timeline(sim.tracer.sorted_events(), limit=60)
        assert "frame" in text and "dcr:wr" in text
        assert "more events" in text
        # nesting shows as indentation under the frame span
        assert "  cie" in text

    def test_timeline_empty(self):
        assert "no trace events" in format_trace_timeline([])
