"""Tests for the VCD corruption scanner."""

import io

import pytest

from repro.analysis import VcdParseError, VcdScan
from repro.kernel import Clock, MHz, Module, Simulator, Timer, VcdWriter, xbits


def run_and_dump():
    """Produce a VCD with a known X window on one signal."""
    sim = Simulator()
    top = Module("top")
    sig = top.signal("data", 8, init=0)
    ok = top.signal("ok", 1, init=0)

    def driver():
        yield Timer(100)
        sig.next = 0x55
        ok.next = 1
        yield Timer(100)
        sig.next = xbits(8)  # X window starts at t=200
        yield Timer(300)
        sig.next = 0xAA  # X window ends at t=500
        yield Timer(100)

    top.process(driver, "driver")
    stream = io.StringIO()
    writer = VcdWriter(stream)
    writer.trace_module(top)
    sim.add_module(top)
    sim.attach_vcd(writer)
    sim.run(until=600)
    sim.close()  # writes the final timestamp
    stream.seek(0)
    return VcdScan.parse(stream)


def test_roundtrip_with_our_writer():
    scan = run_and_dump()
    assert "top.data" in scan.paths()
    assert "top.ok" in scan.paths()
    assert scan.end_time == 600


def test_x_interval_detection():
    scan = run_and_dump()
    assert scan.x_intervals("top.data") == [(200, 500)]
    assert scan.x_intervals("top.ok") == []


def test_first_x():
    scan = run_and_dump()
    t, path = scan.first_x()
    assert (t, path) == (200, "top.data")


def test_changes_list():
    scan = run_and_dump()
    changes = scan.changes("top.ok")
    assert (100, "1") in changes


def test_corruption_report():
    scan = run_and_dump()
    report = scan.corruption_report()
    assert "X on top.data" in report
    assert "[200..500)" in report


def test_unterminated_x_runs_to_end():
    text = """$timescale 1ps $end
$scope module top $end
$var wire 1 ! sig $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
$end
#100
x!
#250
"""
    scan = VcdScan.parse(io.StringIO(text))
    assert scan.x_intervals("top.sig") == [(100, 250)]


def test_parse_errors():
    with pytest.raises(VcdParseError):
        VcdScan.parse(io.StringIO("$enddefinitions $end\n1?\n"))
    with pytest.raises(VcdParseError):
        VcdScan.parse(io.StringIO("$scope\n"))
    with pytest.raises(VcdParseError):
        VcdScan.parse(io.StringIO("$enddefinitions $end\n@bogus\n"))


def test_no_x_report():
    text = """$enddefinitions $end
"""
    scan = VcdScan.parse(io.StringIO(text))
    assert "no X excursions" in scan.corruption_report()


def test_scan_full_system_isolation_bug(tmp_path):
    """End-to-end: the dpr.1 X leak is findable in the dump."""
    from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig

    config = SystemConfig(
        width=48, height=32, simb_payload_words=128,
        faults=frozenset({"dpr.1"}),
    )
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    vcd_path = tmp_path / "dump.vcd"
    writer = VcdWriter(open(vcd_path, "w"))
    writer.trace(
        system.isolation.out_done, system.isolation.out_io,
        scope="autovision.isolation",
    )
    sim.attach_vcd(writer)
    sim.fork(software.run(1), "software", owner=software)
    sim.run_until_event(software.run_complete, timeout=400_000_000)
    sim.close()

    scan = VcdScan.load(str(vcd_path))
    hit = scan.first_x()
    assert hit is not None
    t, path = hit
    assert path.startswith("autovision.isolation")
    # the X window must coincide with a reconfiguration window
    portal = system.artifacts.portal("video_rr")
    inject_times = [r.time for r in portal.timeline if r.kind == "inject_start"]
    swap_times = [r.time for r in portal.timeline if r.kind == "swap"]
    assert any(lo <= t <= hi for lo, hi in zip(inject_times, swap_times))
