"""Tests for the Figure 5 timeline model."""

import pytest

from repro.analysis import build_timeline
from repro.analysis.timeline import WEEK_COMPONENTS, count_package_loc
from repro.verif import BUGS


def test_count_package_loc_counts_nonblank_lines():
    loc = count_package_loc("vmux")
    assert loc > 30


def test_count_file_and_symbol_targets():
    whole = count_package_loc("system/software.py")
    symbol = count_package_loc(("system/software.py", ["ResimReconfigStrategy"]))
    assert 0 < symbol < whole


def test_week_components_all_resolve():
    for week, targets in WEEK_COMPONENTS.items():
        for t in targets:
            assert count_package_loc(t) > 0, f"week {week}: {t} counts zero"


def test_build_timeline_default_takes_paper_at_face_value():
    tl = build_timeline()
    assert tl.total_bugs == len(BUGS)
    assert len(tl.weeks) == 11


def test_build_timeline_with_detection_filter():
    detected = {k: False for k in BUGS}
    detected["dpr.4"] = True
    tl = build_timeline(detected_bugs=detected)
    assert tl.total_bugs == 1
    assert "dpr.4" in tl.week(BUGS["dpr.4"].week_found).bugs_found


def test_series_shapes():
    tl = build_timeline()
    loc = tl.loc_series()
    cum = tl.cumulative_loc_series()
    assert len(loc) == len(cum) == 11
    assert cum[-1][1] == tl.total_loc
    # cumulative is monotonic
    assert all(b[1] >= a[1] for a, b in zip(cum, cum[1:]))


def test_phase_labels():
    tl = build_timeline()
    assert tl.phase_of(1) == "integration"
    assert tl.phase_of(5) == "vmux"
    assert tl.phase_of(11) == "resim"


def test_phase_loc_accessors():
    tl = build_timeline()
    assert tl.baseline_loc() > tl.vmux_phase_loc() > tl.resim_phase_loc()
