"""Tests for the Table II profiler and overhead attribution."""

import pytest

from repro.analysis import measure_artifact_overhead, profile_one_frame
from repro.analysis.profiling import PHASE_ORDER, PhaseStats
from repro.system import SystemConfig

TINY = SystemConfig(width=48, height=32, simb_payload_words=128, video_backdoor=True)


@pytest.fixture(scope="module")
def profile():
    return profile_one_frame(TINY, quantum_ps=500_000)


def test_profile_completes_cleanly(profile):
    assert profile.clean


def test_profile_covers_all_phases(profile):
    for phase in PHASE_ORDER:
        assert profile.phase(phase).simulated_ps > 0, phase


def test_profile_totals_consistent(profile):
    phase_sum = sum(p.simulated_ps for p in profile.phases.values())
    assert phase_sum == profile.total_simulated_ps
    event_sum = sum(p.events for p in profile.phases.values())
    assert event_sum == profile.total_events


def test_rows_order_and_overall(profile):
    rows = profile.rows()
    assert rows[0][0] == "CensusImg Engine"
    assert rows[-1][0] == "Overall"
    assert rows[-1][3] == profile.total_events


def test_events_per_simulated_us():
    p = PhaseStats("x", simulated_ps=2_000_000, events=500)
    assert p.events_per_simulated_us == 250
    assert PhaseStats("y").events_per_simulated_us == 0.0


def test_overhead_measurement_modes():
    # without profile mode: only event shares
    no_prof = measure_artifact_overhead(TINY)
    assert no_prof.total_events > 0
    assert 0 <= no_prof.mux_event_share < 0.2
    assert no_prof.mux_time_share == 0.0
    # profile mode adds wall-time attribution
    prof = measure_artifact_overhead(
        SystemConfig(width=48, height=32, simb_payload_words=128,
                     video_backdoor=True, profile=True)
    )
    assert prof.total_elapsed_ns > 0
    assert prof.mux_elapsed_ns > 0


def test_overhead_vmux_attributes_wrapper():
    cfg = SystemConfig(method="vmux", width=48, height=32,
                       simb_payload_words=128, video_backdoor=True)
    p = measure_artifact_overhead(cfg)
    # vmux build has no ReSim artifacts, but the signature register is
    # part of the simulation-only layer
    assert p.total_events > 0
