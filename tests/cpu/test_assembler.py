"""Tests for the two-pass assembler."""

import pytest

from repro.cpu import AssemblerError, assemble, decode, disassemble


def test_simple_program():
    prog = assemble(
        """
        addi r1, r0, 5
        addi r2, r0, 7
        add  r3, r1, r2
        halt
        """
    )
    assert prog.size_words == 4
    assert str(decode(prog.words[2])) == "add r3, r1, r2"


def test_labels_and_branches():
    prog = assemble(
        """
        start:
            addi r1, r0, 3
        loop:
            addi r1, r1, -1
            cmpwi r1, 0
            bne loop
            b start
        """
    )
    # bne loop: from word 3 back to word 1 -> offset -2
    assert decode(prog.words[3]).imm == -2
    # b start: from word 4 back to word 0 -> offset -4
    assert decode(prog.words[4]).imm == -4
    assert prog.symbols["loop"] == 4


def test_label_on_same_line():
    prog = assemble("start: nop\n b start")
    assert prog.symbols["start"] == 0


def test_forward_reference():
    prog = assemble(
        """
        b end
        nop
        end: halt
        """
    )
    assert decode(prog.words[0]).imm == 2


def test_equ_and_word_directives():
    prog = assemble(
        """
        .equ MAGIC, 0xABCD
        data: .word MAGIC, 2, data
        """
    )
    assert prog.words[0] == 0xABCD
    assert prog.words[1] == 2
    assert prog.words[2] == 0  # address of `data` label


def test_org_pads_with_nops():
    prog = assemble(
        """
        nop
        .org 0x10
        target: halt
        """
    )
    assert prog.size_words == 5
    assert prog.symbols["target"] == 0x10


def test_org_backwards_rejected():
    with pytest.raises(AssemblerError):
        assemble("nop\nnop\n.org 0x4\nnop")


def test_li_pseudo_short_and_long():
    prog = assemble("li r3, 42\nli r4, 0x12345678")
    assert prog.size_words == 4  # li always reserves 2 words
    assert str(decode(prog.words[0])) == "addi r3, r0, 42"
    assert decode(prog.words[1]).mnemonic == "nop"
    assert decode(prog.words[2]).mnemonic == "addis"
    assert decode(prog.words[3]).mnemonic == "ori"


def test_la_pseudo_loads_label_address():
    prog = assemble(
        """
        la r5, buffer
        halt
        buffer: .word 0
        """
    )
    assert prog.symbols["buffer"] == 12
    assert decode(prog.words[0]).mnemonic == "addis"
    assert decode(prog.words[1]) == decode(prog.words[1])
    assert decode(prog.words[1]).imm == 12


def test_mr_pseudo():
    prog = assemble("mr r7, r3")
    i = decode(prog.words[0])
    assert i.mnemonic == "or" and i.ra == i.rb == 3 and i.rd == 7


def test_memory_operand_syntax():
    prog = assemble(".equ OFF, 8\nlwz r3, OFF(r4)\nstw r3, -4(r1)")
    assert decode(prog.words[0]).imm == 8
    assert decode(prog.words[1]).imm == -4


def test_branch_aliases():
    prog = assemble(
        """
        loop: cmpwi r1, 0
        beq loop
        bdnz loop
        """
    )
    assert decode(prog.words[1]).cond == "eq"
    assert decode(prog.words[2]).cond == "ctrnz"


def test_comments_stripped():
    prog = assemble("nop # comment\nnop ; another\n# whole line\n")
    assert prog.size_words == 2


def test_errors():
    with pytest.raises(AssemblerError):
        assemble("bogus r1, r2")
    with pytest.raises(AssemblerError):
        assemble("addi r99, r0, 1")
    with pytest.raises(AssemblerError):
        assemble("b nowhere")
    with pytest.raises(AssemblerError):
        assemble("dup: nop\ndup: nop")
    with pytest.raises(AssemblerError):
        assemble("lwz r1, r2")  # missing d(rA)


def test_base_addr_offsets_symbols():
    prog = assemble("start: b start", base_addr=0x1000)
    assert prog.symbols["start"] == 0x1000
    assert decode(prog.words[0]).imm == 0


def test_disassemble_listing():
    prog = assemble("addi r1, r0, 5\nhalt")
    lines = disassemble(prog.words)
    assert "addi r1, r0, 5" in lines[0]
    assert "halt" in lines[1]


def test_roundtrip_assemble_disassemble_reassemble():
    source = """
        li r3, 1000
        mtctr r3
    loop:
        addi r4, r4, 1
        bdnz loop
        halt
    """
    prog = assemble(source)
    listing = disassemble(prog.words)
    # every emitted word decodes (no .word fallbacks)
    assert not any(".word" in line for line in listing)
