"""Tests for PPC-lite encodings."""

import pytest

from repro.cpu import Instruction, decode, encode
from repro.cpu.isa import BRANCH_CONDS, R_FUNCTS, SYS_FUNCTS


class TestEncodeDecode:
    def test_addi_roundtrip(self):
        i = Instruction("addi", rd=3, ra=1, imm=-7)
        assert decode(encode(i)) == i

    def test_all_dform_roundtrip(self):
        for m in ("addi", "addis", "lwz", "stw", "cmpwi"):
            i = Instruction(m, rd=31, ra=15, imm=-0x8000)
            assert decode(encode(i)) == i
        for m in ("ori", "andi", "xori", "cmplwi", "mfdcr", "mtdcr"):
            i = Instruction(m, rd=31, ra=15, imm=0xFFFF)
            assert decode(encode(i)) == i

    def test_all_rform_roundtrip(self):
        for m in R_FUNCTS:
            i = Instruction(m, rd=1, ra=2, rb=3)
            assert decode(encode(i)) == i

    def test_all_sys_roundtrip(self):
        for m in SYS_FUNCTS:
            assert decode(encode(Instruction(m))) == Instruction(m)

    def test_branch_roundtrip(self):
        for m in ("b", "bl"):
            for off in (-0x200_0000, -1, 0, 1, 0x1FF_FFFF):
                i = Instruction(m, imm=off)
                assert decode(encode(i)) == i

    def test_bc_roundtrip(self):
        for cond in BRANCH_CONDS:
            i = Instruction("bc", cond=cond, imm=-5)
            assert decode(encode(i)) == i

    def test_immediate_range_checked(self):
        with pytest.raises(ValueError):
            encode(Instruction("addi", rd=1, ra=0, imm=0x8000))
        with pytest.raises(ValueError):
            encode(Instruction("ori", rd=1, ra=0, imm=-1))
        with pytest.raises(ValueError):
            encode(Instruction("b", imm=0x200_0000))

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            encode(Instruction("add", rd=32, ra=0, rb=0))

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction("frobnicate"))

    def test_illegal_word_rejected(self):
        with pytest.raises(ValueError):
            decode(0xFFFF_FFFF)  # opcode 0x3F... not SYS funct
        with pytest.raises(ValueError):
            decode((0x18 << 26) | 0x7FF)  # bad R funct

    def test_str_forms(self):
        assert str(Instruction("lwz", rd=3, ra=4, imm=8)) == "lwz r3, 8(r4)"
        assert str(Instruction("add", rd=1, ra=2, rb=3)) == "add r1, r2, r3"
        assert "bc eq" in str(Instruction("bc", cond="eq", imm=2))
