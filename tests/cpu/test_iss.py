"""Tests for the PPC-lite instruction-set simulator."""

import pytest

from repro.bus import DcrBus, DcrRegisterFile, InterruptController, PlbBus, PlbMemory
from repro.cpu import PpcLiteIss, assemble
from repro.cpu.iss import X_CANARY
from repro.kernel import Clock, MHz, Module, ProcessError, Simulator


class IssBench:
    def __init__(self):
        self.sim = Simulator()
        self.top = Module("top")
        self.clk = Clock("clk", MHz(100), parent=self.top)
        self.bus = PlbBus("plb", self.clk, parent=self.top)
        self.mem = PlbMemory("mem", 64 * 1024, parent=self.top)
        self.bus.attach_slave(self.mem, base=0, size=64 * 1024)
        self.dcr = DcrBus("dcr", self.clk, parent=self.top)
        self.node = DcrRegisterFile("node", base=0x40, size=16, parent=self.top)
        self.node.add_register("CTRL", 0, init=0)
        self.node.add_register("DATA", 1, init=0x1234)
        self.dcr.attach(self.node)
        self.intc = InterruptController("intc", base=0x80, clock=self.clk, parent=self.top)
        self.dcr.attach(self.intc)
        self.req = self.top.signal("req", 1, init=0)
        self.intc.connect_source("dev", self.req)
        self.iss = PpcLiteIss(
            "cpu",
            self.clk,
            port=self.bus.attach_master("cpu"),
            dcr=self.dcr,
            irq=self.intc.irq,
            parent=self.top,
        )
        self.sim.add_module(self.top)

    def run_program(self, source: str, timeout_us: int = 2000) -> PpcLiteIss:
        self.iss.load(assemble(source))
        self.iss.start()
        self.sim.run_until_event(self.iss.done, timeout=timeout_us * 1_000_000)
        return self.iss


def run(source, timeout_us=2000):
    bench = IssBench()
    bench.run_program(source, timeout_us)
    return bench


EXIT = """
        li r0, 0          # service: exit
        sc
"""


def test_arithmetic_and_exit():
    bench = run(
        """
        addi r3, r0, 5
        addi r4, r0, 7
        add  r3, r3, r4
        li r0, 0
        sc
        """
    )
    assert bench.iss.halted
    assert bench.iss.exit_code == 12


def test_loop_with_ctr():
    bench = run(
        """
        li r3, 0
        li r4, 10
        mtctr r4
    loop:
        addi r3, r3, 3
        bdnz loop
        li r0, 0
        sc
        """
    )
    assert bench.iss.exit_code == 30


def test_subroutine_call_and_return():
    bench = run(
        """
        li r3, 1
        bl double
        bl double
        li r0, 0
        sc
    double:
        add r3, r3, r3
        blr
        """
    )
    assert bench.iss.exit_code == 4


def test_memory_load_store_via_plb():
    bench = run(
        """
        li r3, 0xBEEF
        li r4, 0x100
        stw r3, 0(r4)
        lwz r5, 0(r4)
        mr r3, r5
        li r0, 0
        sc
        """
    )
    assert bench.iss.exit_code == 0xBEEF
    assert bench.mem.plb_read(0x100) == 0xBEEF


def test_dcr_access():
    bench = run(
        """
        mfdcr r3, 0x41      # node.DATA = 0x1234
        mtdcr r3, 0x40      # copy into node.CTRL
        li r3, 0
        li r0, 0
        sc
        """
    )
    assert bench.iss.exit_code == 0
    assert bench.node.peek("CTRL") == 0x1234


def test_console_and_report_services():
    bench = run(
        """
        li r3, 72           # 'H'
        li r0, 1
        sc
        li r3, 105          # 'i'
        sc
        li r3, 42
        li r0, 2
        sc
        li r0, 0
        li r3, 0
        sc
        """
    )
    assert "".join(bench.iss.console) == "Hi"
    assert bench.iss.reported == [42]


def test_signed_compare_branches():
    bench = run(
        """
        li r3, -5
        cmpwi r3, 3
        blt is_less
        li r3, 0
        li r0, 0
        sc
    is_less:
        li r3, 1
        li r0, 0
        sc
        """
    )
    assert bench.iss.exit_code == 1


def test_unsigned_compare():
    bench = run(
        """
        li r3, -5            # 0xFFFFFFFB unsigned: huge
        cmplwi r3, 3
        bgt is_greater
        li r3, 0
        li r0, 0
        sc
    is_greater:
        li r3, 1
        li r0, 0
        sc
        """
    )
    assert bench.iss.exit_code == 1


def test_interrupt_wait_isr_rfi():
    bench = IssBench()
    source = """
        .equ INTC_ISR, 0x80
        .equ INTC_IER, 0x81
        b main
        .org 0x500
    isr:
        mfdcr r6, INTC_ISR    # read pending
        mtdcr r6, INTC_ISR    # acknowledge
        addi r7, r7, 1        # count interrupts
        rfi
        .org 0x600
    main:
        li r6, 1
        mtdcr r6, INTC_IER    # enable source 0
        wrteei1
        wait                  # sleep until the device fires
        mr r3, r7
        li r0, 0
        sc
    """

    def device():
        from repro.kernel import Timer

        yield Timer(5_000_000)  # 5 us
        bench.req.next = 1
        yield Timer(20_000)  # short pulse: the INTC latches it
        bench.req.next = 0

    bench.sim.fork(device())
    bench.run_program(source)
    assert bench.iss.exit_code == 1
    assert bench.iss.interrupts_taken == 1
    # woke up after the device fired
    assert bench.sim.time >= 5_000_000


def test_x_read_produces_canary():
    bench = run(
        """
        li r4, 0x20000      # beyond the 64KB memory: decode error -> X
        lwz r3, 0(r4)
        li r0, 0
        sc
        """
    )
    assert bench.iss.x_reads == 1
    assert bench.iss.exit_code == X_CANARY


def test_illegal_instruction_fatal():
    bench = IssBench()
    prog = assemble("nop")
    prog.words[0] = 0xFFFF_FFFF
    bench.iss.load(prog)
    bench.iss.start()
    with pytest.raises(ProcessError):
        bench.sim.run(until=1_000_000)


def test_unknown_service_fatal():
    bench = IssBench()
    bench.iss.load(assemble("li r0, 99\nsc\nhalt"))
    bench.iss.start()
    with pytest.raises(ProcessError):
        bench.sim.run(until=1_000_000)


def test_custom_service_hook():
    bench = IssBench()
    seen = []
    bench.iss.services[7] = lambda iss: seen.append(iss._get(3))
    bench.run_program(
        """
        li r3, 123
        li r0, 7
        sc
        li r0, 0
        sc
        """
    )
    assert seen == [123]


def test_instruction_timing_one_per_cycle():
    bench = run(
        """
        li r3, 100
        mtctr r3
    loop:
        bdnz loop
        li r0, 0
        sc
        """
    )
    # ~106 instructions at 10ns each, plus scheduling slack
    cycles = bench.sim.time / MHz(100)
    assert bench.iss.instructions_retired >= 104
    assert cycles == pytest.approx(bench.iss.instructions_retired, abs=4)


def test_program_too_large_rejected():
    bench = IssBench()
    from repro.cpu.assembler import Program

    with pytest.raises(ValueError):
        bench.iss.load(Program([0] * (len(bench.iss.imem) + 1), 0, {}, []))


def test_start_requires_elaboration_and_once():
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    iss = PpcLiteIss("cpu", clk, parent=top)
    with pytest.raises(RuntimeError):
        iss.start()
    sim.add_module(top)
    iss.load(assemble("halt"))
    iss.start()
    with pytest.raises(RuntimeError):
        iss.start()
