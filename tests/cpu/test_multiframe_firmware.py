"""Multi-frame assembly firmware: the full pipelined flow on the ISS."""

import numpy as np
import pytest

from repro.cpu import assemble
from repro.cpu.firmware import (
    SVC_FRAME_DONE,
    SVC_LOAD_FRAME,
    attach_iss,
    multiframe_firmware,
)
from repro.system import AutoVisionSystem, SystemConfig
from repro.video import census_transform, match_features, unpack_pixels, unpack_vector_bytes

N_FRAMES = 3


@pytest.fixture(scope="module")
def multiframe_run():
    config = SystemConfig(width=48, height=32, simb_payload_words=128)
    system = AutoVisionSystem(config)
    iss = attach_iss(system)
    program = assemble(multiframe_firmware(system, N_FRAMES))
    iss.load(program)
    sim = system.build()
    mm = system.memory_map
    h, w = config.height, config.width
    frame_checks = []

    def load_frame(iss):
        f = iss._get(3)
        system.video_in.send_frame_backdoor(f, system.memory, mm.input[0])

    def frame_done(iss):
        f = iss._get(3)
        # check the buffers NOW, before the firmware recycles them
        feat_base = mm.feat[f % 2]
        vec_base = mm.vec[f % 2]
        golden_curr = census_transform(system.sequence.frame(f))
        golden_prev = census_transform(system.sequence.frame(max(f - 1, 0)))
        feat = unpack_pixels(
            system.memory.dump_words(feat_base, h * w // 4)
        ).reshape(h, w)
        gdx, gdy, gvalid = match_features(golden_prev, golden_curr, radius=2)
        dx, dy, valid = unpack_vector_bytes(
            system.memory.dump_words(vec_base, h * w // 4), (h, w), 2
        )
        frame_checks.append(
            dict(
                frame=f,
                feat_ok=bool(np.array_equal(feat, golden_curr)),
                vec_ok=bool(
                    np.array_equal(dx, gdx)
                    and np.array_equal(dy, gdy)
                    and np.array_equal(valid, gvalid)
                ),
            )
        )

    iss.services[SVC_LOAD_FRAME] = load_frame
    iss.services[SVC_FRAME_DONE] = frame_done
    iss.start()
    finished = sim.run_until_event(iss.done, timeout=8_000_000_000)
    return system, iss, frame_checks, finished


def test_firmware_completes_all_frames(multiframe_run):
    system, iss, checks, finished = multiframe_run
    assert finished and iss.exit_code == 0
    assert len(checks) == N_FRAMES


def test_two_interrupts_per_frame(multiframe_run):
    system, iss, checks, finished = multiframe_run
    assert iss.reported == [2 * N_FRAMES]
    assert iss.interrupts_taken == 2 * N_FRAMES


def test_two_reconfigurations_per_frame(multiframe_run):
    system, iss, checks, finished = multiframe_run
    portal = system.artifacts.portal("video_rr")
    assert portal.reconfigurations == 2 * N_FRAMES


def test_every_frame_matches_golden(multiframe_run):
    system, iss, checks, finished = multiframe_run
    for c in checks:
        assert c["feat_ok"], f"frame {c['frame']}: feature image mismatch"
        assert c["vec_ok"], f"frame {c['frame']}: motion vectors mismatch"


def test_ping_pong_alternates(multiframe_run):
    """Frames 1+ match against the *previous* frame, proving the
    ping-pong rotation in assembly works."""
    system, iss, checks, finished = multiframe_run
    assert [c["frame"] for c in checks] == list(range(N_FRAMES))


def test_no_monitor_violations(multiframe_run):
    system, iss, checks, finished = multiframe_run
    assert iss.x_reads == 0
    assert system.isolation.x_leaks == 0
    assert system.slot.lost_start_pulses == 0


def test_firmware_rejects_zero_frames():
    system = AutoVisionSystem(
        SystemConfig(width=48, height=32, simb_payload_words=128)
    )
    with pytest.raises(ValueError):
        multiframe_firmware(system, 0)
