"""Full-system ISS tests: the assembly firmware drives the real DUT."""

import numpy as np
import pytest

from repro.cpu.firmware import FIRMWARE_EXIT_OK, attach_iss, build_iss_demo, optical_flow_firmware
from repro.cpu import assemble
from repro.system import AutoVisionSystem, SystemConfig
from repro.video import census_transform, match_features, unpack_pixels, unpack_vector_bytes


@pytest.fixture(scope="module")
def iss_run():
    system, iss, program = build_iss_demo()
    sim = system.build()
    frame = system.video_in.send_frame_backdoor(0, system.memory, system.memory_map.input[0])
    iss.start()
    ok = sim.run_until_event(iss.done, timeout=400_000_000_000)
    return system, iss, sim, frame, ok


def test_firmware_assembles():
    system = AutoVisionSystem(SystemConfig(width=48, height=32, simb_payload_words=128))
    program = assemble(optical_flow_firmware(system))
    assert program.size_words > 100
    assert "isr" in program.symbols and program.symbols["isr"] == 0x500


def test_firmware_runs_to_completion(iss_run):
    system, iss, sim, frame, ok = iss_run
    assert ok, "firmware did not finish"
    assert iss.halted
    assert iss.exit_code == FIRMWARE_EXIT_OK


def test_firmware_saw_two_engine_interrupts(iss_run):
    system, iss, sim, frame, ok = iss_run
    assert iss.reported == [2]
    assert iss.interrupts_taken == 2


def test_firmware_performed_two_reconfigurations(iss_run):
    system, iss, sim, frame, ok = iss_run
    portal = system.artifacts.portal("video_rr")
    assert portal.reconfigurations == 2
    assert system.slot.active is system.cie  # swapped back at the end
    assert system.icapctrl.transfers_completed == 2


def test_firmware_feature_image_matches_golden(iss_run):
    system, iss, sim, frame, ok = iss_run
    mm = system.memory_map
    h, w = system.config.height, system.config.width
    feat = unpack_pixels(system.memory.dump_words(mm.feat[0], h * w // 4))
    assert np.array_equal(feat.reshape(h, w), census_transform(frame))


def test_firmware_vectors_match_golden(iss_run):
    system, iss, sim, frame, ok = iss_run
    mm = system.memory_map
    h, w = system.config.height, system.config.width
    golden = census_transform(frame)
    gdx, gdy, gvalid = match_features(golden, golden, radius=system.config.radius)
    words = system.memory.dump_words(mm.vec[0], h * w // 4)
    dx, dy, valid = unpack_vector_bytes(words, (h, w), system.config.radius)
    assert np.array_equal(dx, gdx)
    assert np.array_equal(dy, gdy)
    assert np.array_equal(valid, gvalid)


def test_firmware_no_monitor_violations(iss_run):
    system, iss, sim, frame, ok = iss_run
    assert iss.x_reads == 0
    assert system.isolation.x_leaks == 0
    assert system.intc.x_violations == 0
    assert system.bus.protocol_errors == 0
    assert not system.artifacts.icap.framing_errors


def test_attach_iss_after_build_rejected():
    system = AutoVisionSystem(SystemConfig(width=48, height=32, simb_payload_words=128))
    system.build()
    with pytest.raises(RuntimeError):
        attach_iss(system)


def test_build_iss_demo_requires_resim():
    with pytest.raises(ValueError):
        build_iss_demo(SystemConfig(method="vmux", width=48, height=32))
