"""Exhaustive ALU semantics of the ISS, one small program per op."""

import pytest

from repro.cpu import PpcLiteIss, assemble
from repro.kernel import Clock, MHz, Module, Simulator

WORD = 0xFFFF_FFFF


def run_alu(setup: str, result_reg: str = "r3") -> int:
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    iss = PpcLiteIss("cpu", clk, parent=top)
    source = f"""
{setup}
        mr r3, {result_reg}
        li r0, 0
        sc
"""
    iss.load(assemble(source))
    sim.add_module(top)
    iss.start()
    assert sim.run_until_event(iss.done, timeout=10_000_000)
    return iss.exit_code


@pytest.mark.parametrize(
    "setup, expected",
    [
        ("li r4, 7\nli r5, 5\nadd r6, r4, r5", 12),
        ("li r4, 7\nli r5, 5\nsub r6, r4, r5", 2),
        ("li r4, 5\nli r5, 7\nsub r6, r4, r5", (5 - 7) & WORD),
        ("li r4, 0xF0\nli r5, 0x3C\nand r6, r4, r5", 0x30),
        ("li r4, 0xF0\nli r5, 0x3C\nor r6, r4, r5", 0xFC),
        ("li r4, 0xF0\nli r5, 0x3C\nxor r6, r4, r5", 0xCC),
        ("li r4, 1\nli r5, 31\nslw r6, r4, r5", 0x8000_0000),
        ("li r4, 0x80000000\nli r5, 31\nsrw r6, r4, r5", 1),
        ("li r4, 0x80000000\nli r5, 4\nsraw r6, r4, r5", 0xF800_0000),
        ("li r4, 0x40000000\nli r5, 4\nsraw r6, r4, r5", 0x0400_0000),
        ("li r4, 1000\nli r5, 1000\nmullw r6, r4, r5", 1_000_000),
        ("li r4, 0x10000\nli r5, 0x10000\nmullw r6, r4, r5", 0),  # wraps
        ("li r4, 100\nli r5, 7\ndivwu r6, r4, r5", 14),
        ("li r4, 100\nli r5, 0\ndivwu r6, r4, r5", 0),  # div by zero -> 0
        ("li r4, 0x1234\nori r6, r4, 0xFF", 0x12FF),
        ("li r4, 0x1234\nandi r6, r4, 0xFF", 0x34),
        ("li r4, 0x1234\nxori r6, r4, 0xFF", 0x12CB),
        ("li r4, 0x12\naddis r6, r4, 1", 0x10012),
        ("li r4, -1\naddi r6, r4, -1", 0xFFFF_FFFE),
    ],
)
def test_alu_semantics(setup, expected):
    assert run_alu(setup, "r6") == expected


def test_r0_reads_as_zero_for_addi_base():
    """PowerPC convention: rA=0 in addi means literal zero, not r0."""
    assert run_alu("li r0, 99\naddi r6, r0, 5", "r6") == 5


def test_lr_ctr_moves():
    assert run_alu("li r4, 77\nmtctr r4\nmfctr r6", "r6") == 77
    assert run_alu("li r4, 88\nmtlr r4\nmflr r6", "r6") == 88


def test_cmp_flags_all_relations():
    # lt / gt / eq via exit codes 1/2/3
    source = """
        li r4, -3
        cmpwi r4, 5
        blt was_lt
        li r3, 0
        li r0, 0
        sc
    was_lt:
        li r4, 9
        cmpwi r4, 5
        bgt was_gt
        li r3, 1
        li r0, 0
        sc
    was_gt:
        li r4, 5
        cmpwi r4, 5
        beq was_eq
        li r3, 2
        li r0, 0
        sc
    was_eq:
        li r3, 3
        li r0, 0
        sc
    """
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    iss = PpcLiteIss("cpu", clk, parent=top)
    iss.load(assemble(source))
    sim.add_module(top)
    iss.start()
    assert sim.run_until_event(iss.done, timeout=10_000_000)
    assert iss.exit_code == 3
