"""Buggy-firmware variants on the ISS agree with the HAL campaign.

DESIGN.md decision 5: the same driver logic exists at two fidelity
levels (Python HAL and PPC-lite assembly); injected software bugs must
produce the same verdicts.  These tests run the assembly driver with
the Table III software bugs compiled in and check the ISS-level
simulation exposes them the same way ReSim+HAL does.
"""

import pytest

from repro.cpu.firmware import build_iss_demo, optical_flow_firmware
from repro.system import AutoVisionSystem, SystemConfig

# a clean single-frame run finishes in ~60 us simulated; 2 ms is a
# generous hang threshold that keeps the negative tests fast
TIMEOUT_PS = 2_000_000_000


def run_fw(firmware_faults=frozenset(), cfg_mhz=50.0):
    config = SystemConfig(
        width=48, height=32, simb_payload_words=128, cfg_mhz=cfg_mhz
    )
    system, iss, program = build_iss_demo(config, firmware_faults)
    sim = system.build()
    system.video_in.send_frame_backdoor(0, system.memory, system.memory_map.input[0])
    iss.start()
    finished = sim.run_until_event(iss.done, timeout=TIMEOUT_PS)
    return system, iss, finished


def test_clean_firmware_baseline():
    system, iss, finished = run_fw()
    assert finished and iss.exit_code == 0
    assert system.slot.lost_start_pulses == 0
    assert system.slot.lost_reset_pulses == 0


def test_dpr5_firmware_hangs_with_truncated_transfer():
    """BSIZE in words: the truncated SimB never swaps; the firmware
    waits forever for an engine that is not there."""
    system, iss, finished = run_fw(frozenset({"dpr.5"}))
    assert not finished  # the ISS never reaches exit
    assert system.artifacts.portal("video_rr").reconfigurations == 0
    # the region is stuck mid-reconfiguration with injection active
    assert system.artifacts.injector("video_rr").active
    # and the start/reset pulses for the ME vanished
    assert system.slot.lost_reset_pulses + system.slot.lost_start_pulses >= 1


def test_dpr6b_firmware_resets_too_early_on_slow_cfg_clock():
    system, iss, finished = run_fw(frozenset({"dpr.6b"}), cfg_mhz=50.0)
    assert not finished
    assert system.slot.lost_reset_pulses + system.slot.lost_start_pulses >= 1


def test_dpr6b_firmware_masked_by_fast_cfg_clock():
    """On the original clocking scheme the dummy loop was long enough."""
    system, iss, finished = run_fw(frozenset({"dpr.6b"}), cfg_mhz=100.0)
    assert finished and iss.exit_code == 0
    assert system.artifacts.portal("video_rr").reconfigurations == 2


def test_unknown_firmware_fault_rejected():
    system = AutoVisionSystem(
        SystemConfig(width=48, height=32, simb_payload_words=128)
    )
    with pytest.raises(ValueError):
        optical_flow_firmware(system, faults={"hw.s1"})


def test_iss_and_hal_verdicts_agree():
    """Same bug, two software fidelity levels, same verdict."""
    from repro.verif import run_system

    for key in ("dpr.5", "dpr.6b"):
        hal = run_system(
            SystemConfig(
                width=48, height=32, simb_payload_words=128,
                faults=frozenset({key}),
            ),
            n_frames=1,
        )
        _, _, iss_finished = run_fw(frozenset({key}))
        assert hal.detected == (not iss_finished), key
