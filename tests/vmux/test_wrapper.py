"""Tests for the Virtual Multiplexing wrapper."""

import pytest

from repro.bus import DcrBus, PlbBus, PlbMemory
from repro.engines import CensusImageEngine, EngineRegs, MatchingEngine
from repro.kernel import Clock, MHz, Module, Simulator
from repro.reconfig import RRSlot
from repro.vmux import VirtualMuxWrapper


def make_env(initial_signature=None):
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", 4096, parent=top)
    bus.attach_slave(mem, 0, 4096)
    dcr = DcrBus("dcr", clk, parent=top)
    regs = EngineRegs("eregs", base=0x10, parent=top)
    dcr.attach(regs)
    cie = CensusImageEngine(clock=clk, parent=top)
    me = MatchingEngine(clock=clk, parent=top)
    slot = RRSlot("rr0", 0x1, bus.attach_master("rr"), regs, [cie, me], parent=top)
    vmux = VirtualMuxWrapper(
        "vmux", slot, dcr_base=0x30, initial_signature=initial_signature,
        parent=top,
    )
    dcr.attach(vmux.signature)
    sim.add_module(top)
    return sim, top, dcr, slot, vmux, cie, me


def test_initial_signature_selects_engine():
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=0x1)
    assert slot.active is cie
    assert cie.is_reset  # vmux swaps are ideal


def test_uninitialized_signature_selects_nothing():
    """The bug.hw.2 situation: no engine active, outputs unknown."""
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=None)
    assert slot.active is None
    sim.run_for(1000)
    assert slot.out_done.value.has_x


def test_software_write_swaps_instantly():
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=0x1)
    t = {}

    def sw():
        t0 = sim.time
        yield from dcr.write(vmux.signature.addr_of("SIG"), 0x2)
        t["dur"] = sim.time - t0

    sim.fork(sw())
    sim.run_for(10_000_000)
    assert slot.active is me
    assert me.is_reset  # no dirty-state modeling under vmux
    # swap latency is just the DCR write (a handful of cycles)
    assert t["dur"] < 200_000
    assert vmux.swaps >= 2


def test_unknown_signature_value_deselects_and_counts():
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=0x1)

    def sw():
        yield from dcr.write(vmux.signature.addr_of("SIG"), 0x7F)

    sim.fork(sw())
    sim.run_for(10_000_000)
    assert slot.active is None
    assert vmux.bad_signature_writes == 1


def test_write_zero_means_none():
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=0x1)

    def sw():
        yield from dcr.write(vmux.signature.addr_of("SIG"), 0)

    sim.fork(sw())
    sim.run_for(10_000_000)
    assert slot.active is None
    assert vmux.bad_signature_writes == 0  # 0 is the legitimate "none"


def test_active_id_tracks_slot():
    sim, top, dcr, slot, vmux, cie, me = make_env(initial_signature=0x2)
    assert vmux.active_id == 0x2
