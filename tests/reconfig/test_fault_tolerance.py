"""The fault-tolerance stack: CRC'd SimBs, W1C STATUS, watchdog, truncation.

Detection must fire *before* damage commits (a corrupt payload never
swaps the slot) and every abort path must leave the machinery in a
state a driver can retry from: STATUS error latched, ICAP resynced,
error injection released.
"""

import numpy as np
import pytest

from repro.reconfig import SimBError, SimBParser, build_simb, decode_simb
from repro.reconfig.icapctrl import STATUS_DONE, STATUS_ERROR
from repro.reconfig.simb import TYPE1_WRITE_CRC, payload_crc, simb_header_words

from .test_machinery import BITSTREAM_BASE, RR_ID, MachineryBench


class TestCrcSimB:
    def test_crc_adds_one_packet_to_header(self):
        assert simb_header_words(crc=True) == simb_header_words() + 2
        words = build_simb(1, 2, payload_words=16, crc=True)
        assert len(words) == simb_header_words(crc=True) + 16 + 2
        assert TYPE1_WRITE_CRC in words
        # the CRC packet sits between WCFG and the FDRI header, so the
        # parser knows the expected value before the payload starts
        idx = words.index(TYPE1_WRITE_CRC)
        assert words[idx + 1] == payload_crc(words[simb_header_words(crc=True):-2])

    def test_good_crc_parses_clean(self):
        words = build_simb(1, 2, payload_words=16, crc=True)
        events = decode_simb(words)
        kinds = [e.kind for e in events]
        assert "crc" in kinds
        assert "payload_end" in kinds
        assert kinds[-1] == "desync"

    def test_bitflip_raises_before_payload_end(self):
        words = build_simb(1, 2, payload_words=16, crc=True)
        words[simb_header_words(crc=True) + 5] ^= 0x0000_0100
        parser = SimBParser()
        events = []
        with pytest.raises(SimBError, match="CRC mismatch"):
            for w in words:
                events.extend(parser.push(w))
        assert parser.crc_failures == 1
        assert "payload_end" not in [e.kind for e in events]

    def test_simb_without_crc_is_unchecked(self):
        words = build_simb(1, 2, payload_words=16)
        words[simb_header_words() + 5] ^= 0x0000_0100
        events = decode_simb(words)  # legacy format: corruption sails by
        assert "payload_end" in [e.kind for e in events]


class TestStatusW1C:
    def _completed_bench(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        return bench

    def test_write_zero_does_not_clear(self):
        bench = self._completed_bench()
        bench.icapctrl._on_status(0)
        assert bench.icapctrl.status_done

    def test_write_one_clears_done(self):
        bench = self._completed_bench()
        bench.icapctrl._on_status(STATUS_DONE)
        assert not bench.icapctrl.status_done

    def test_clearing_done_preserves_error(self):
        bench = self._completed_bench()
        bench.icapctrl._latch_error("synthetic")
        bench.icapctrl._on_status(STATUS_DONE)
        assert not bench.icapctrl.status_done
        assert bench.icapctrl.status_error  # not silently dropped

    def test_clearing_error_preserves_done(self):
        bench = self._completed_bench()
        bench.icapctrl._latch_error("synthetic")
        bench.icapctrl._on_status(STATUS_ERROR)
        assert bench.icapctrl.status_done
        assert not bench.icapctrl.status_error


class TestWatchdog:
    def test_stalled_fetch_aborted_and_retryable(self):
        bench = MachineryBench()
        bench.icapctrl.watchdog_cycles = 256
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.icapctrl.stall_fetch = True  # lost bus grant
        bench.start_transfer(n * 4)
        bench.sim.run_for(20_000_000)
        ctrl = bench.icapctrl
        assert ctrl.transfers_aborted == 1
        assert ctrl.status_error and not ctrl.status_done
        assert not ctrl.stall_fetch  # abort cleared the stall
        assert len(ctrl._fifo) == 0
        assert not bench.injector.active  # isolation path released
        assert not bench.icap.mid_reconfiguration  # parser resynced
        # the machinery accepts a clean retry afterwards
        ctrl.clear_done()
        bench.load_simb(bench.me.ENGINE_ID)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)
        assert bench.slot.active is bench.me

    def test_watchdog_quiet_on_healthy_transfer(self):
        bench = MachineryBench()
        bench.icapctrl.watchdog_cycles = 256
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        bench.sim.run_for(5_000_000)
        assert bench.icapctrl.transfers_aborted == 0
        assert not bench.icapctrl.status_error

    def test_disabled_watchdog_lets_stall_wedge(self):
        """Without fault tolerance the historical behaviour persists."""
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.icapctrl.stall_fetch = True
        bench.start_transfer(n * 4)
        assert not bench.run_until_done(timeout_us=20)
        assert bench.icapctrl.transfers_aborted == 0
        assert bench.icapctrl.status_busy  # stuck, as the bug would be


class TestTruncationDetection:
    def test_truncated_transfer_flagged_and_resynced(self):
        bench = MachineryBench()
        bench.icapctrl.detect_truncation = True
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.start_transfer(n)  # dpr.5: byte count given in words
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)
        ctrl = bench.icapctrl
        assert ctrl.status_error
        assert bench.portal.reconfigurations == 0
        assert not bench.icap.mid_reconfiguration  # resynced, not wedged
        assert not bench.injector.active

    def test_without_detection_truncation_is_silent(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        bench.start_transfer(n)
        assert bench.run_until_done()
        assert not bench.icapctrl.status_error  # historical silent loss
        assert bench.icap.mid_reconfiguration


class TestCrcEndToEnd:
    def _load_crc_simb(self, bench, module_id, flip_bit=False):
        words = build_simb(
            RR_ID, module_id, bench.payload_words, crc=True
        )
        if flip_bit:
            words[simb_header_words(crc=True) + 3] ^= 1
        bench.mem.load_words(BITSTREAM_BASE, np.array(words, dtype=np.uint32))
        return len(words)

    def test_clean_crc_simb_swaps(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        n = self._load_crc_simb(bench, bench.me.ENGINE_ID)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)
        assert bench.slot.active is bench.me
        assert bench.icap.crc_failures == 0

    def test_corrupt_payload_never_commits_swap(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        n = self._load_crc_simb(bench, bench.me.ENGINE_ID, flip_bit=True)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)
        assert bench.icap.crc_failures == 1
        assert bench.portal.reconfigurations == 0
        assert bench.portal.aborted_loads == 1
        assert bench.slot.active is None  # load aborted mid-flight...
        assert not bench.injector.active  # ...but injection released
        assert bench.icapctrl.status_error  # and the driver can see it
        assert len(bench.sim.warnings) > 0  # trace channel has the story
