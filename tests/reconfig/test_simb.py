"""Tests for the SimB format and parser (Table I)."""

import pytest

from repro.reconfig import (
    DESYNC_CMD,
    NOOP,
    SYNC_WORD,
    TYPE1_WRITE_CMD,
    TYPE1_WRITE_FAR,
    TYPE2_WRITE_FDRI,
    WCFG_CMD,
    SimBError,
    SimBParser,
    build_simb,
    decode_simb,
    far_decode,
    far_encode,
)
from repro.reconfig.simb import simb_header_words


class TestFar:
    def test_table1_example(self):
        """Table I: FA=0x01020000 selects module 0x02 in region 0x01."""
        assert far_encode(0x01, 0x02) == 0x01020000
        assert far_decode(0x01020000) == (0x01, 0x02)

    def test_roundtrip(self):
        for rr in (0, 1, 0xFF):
            for mod in (0, 2, 0xFF):
                assert far_decode(far_encode(rr, mod)) == (rr, mod)

    def test_range_checked(self):
        with pytest.raises(ValueError):
            far_encode(0x100, 0)
        with pytest.raises(ValueError):
            far_encode(0, -1)


class TestBuild:
    def test_table1_word_sequence(self):
        """The exact SimB of Table I (4 payload words)."""
        words = build_simb(0x1, 0x2, payload_words=4)
        assert words[0] == 0xAA995566  # SYNC
        assert words[1] == 0x20000000  # NOP
        assert words[2] == 0x30002001  # Type 1 Write FAR
        assert words[3] == 0x01020000  # FA
        assert words[4] == 0x30008001  # Type 1 Write CMD
        assert words[5] == 0x00000001  # WCFG
        assert words[6] == 0x30004000  # Type 2 Write FDRI
        assert words[7] == 0x50000004  # size = 4
        assert len(words[8:12]) == 4  # random payload
        assert words[12] == 0x30008001  # Type 1 Write CMD
        assert words[13] == 0x0000000D  # DESYNC
        assert len(words) == 14

    def test_length_is_header_plus_payload_plus_trailer(self):
        words = build_simb(1, 2, payload_words=100)
        assert len(words) == simb_header_words() + 100 + 2

    def test_payload_deterministic_by_seed(self):
        a = build_simb(1, 2, 16, seed=5)
        b = build_simb(1, 2, 16, seed=5)
        c = build_simb(1, 2, 16, seed=6)
        assert a == b
        assert a != c

    def test_payload_must_be_positive(self):
        with pytest.raises(ValueError):
            build_simb(1, 2, payload_words=0)

    def test_designer_chooses_length(self):
        short = build_simb(1, 2, payload_words=100)
        real = build_simb(1, 2, payload_words=129 * 1024)
        assert len(real) - len(short) == 129 * 1024 - 100


class TestParser:
    def test_decode_complete_simb(self):
        words = build_simb(0x1, 0x2, payload_words=4)
        events = decode_simb(words)
        kinds = [e.kind for e in events]
        assert kinds[0] == "sync"
        assert "far" in kinds
        assert "wcfg" in kinds
        assert "fdri" in kinds
        assert kinds[-1] == "desync"
        far = next(e for e in events if e.kind == "far")
        assert (far.rr_id, far.module_id) == (0x1, 0x2)

    def test_payload_start_and_end_markers(self):
        """Word 0 starts error injection; last word triggers swap."""
        words = build_simb(0x1, 0x2, payload_words=4)
        events = decode_simb(words)
        starts = [e for e in events if e.kind == "payload_start"]
        ends = [e for e in events if e.kind == "payload_end"]
        assert len(starts) == 1 and len(ends) == 1
        payload_first = simb_header_words()
        assert starts[0].word_index == payload_first
        assert ends[0].word_index == payload_first + 3

    def test_words_before_sync_ignored(self):
        parser = SimBParser()
        assert parser.push(0x12345678) == []
        assert parser.push(0) == []
        events = parser.push(SYNC_WORD)
        assert events[0].kind == "sync"

    def test_mid_reconfiguration_flag(self):
        parser = SimBParser()
        words = build_simb(1, 2, payload_words=4)
        for w in words[:-1]:
            parser.push(w)
        assert parser.mid_reconfiguration
        parser.push(words[-1])
        assert not parser.mid_reconfiguration

    def test_completed_loads_recorded(self):
        parser = SimBParser()
        for w in build_simb(1, 2, 4) + build_simb(1, 1, 4):
            parser.push(w)
        assert parser.completed_loads == [(1, 2), (1, 1)]

    def test_garbage_after_sync_raises(self):
        parser = SimBParser()
        parser.push(SYNC_WORD)
        with pytest.raises(SimBError):
            parser.push(0xDEADBEEF)

    def test_truncated_transfer_fails_silently(self):
        """bug.dpr.5 mechanism: a short transfer swallows the trailer as
        payload, never swaps, and leaves the port mid-reconfiguration."""
        words = build_simb(1, 2, payload_words=8)
        parser = SimBParser()
        events = []
        # driver transfers only a quarter of the stream
        for w in words[: len(words) // 4]:
            events.extend(parser.push(w))
        assert parser.mid_reconfiguration
        assert not any(e.kind == "payload_end" for e in events)
        assert parser.completed_loads == []

    def test_fdri_before_far_raises(self):
        parser = SimBParser()
        parser.push(SYNC_WORD)
        parser.push(TYPE2_WRITE_FDRI)
        with pytest.raises(SimBError):
            parser.push(0x50000004)

    def test_fdri_before_wcfg_raises(self):
        parser = SimBParser()
        parser.push(SYNC_WORD)
        parser.push(TYPE1_WRITE_FAR)
        parser.push(far_encode(1, 2))
        parser.push(TYPE2_WRITE_FDRI)
        with pytest.raises(SimBError):
            parser.push(0x50000004)

    def test_bad_type2_length_tag_raises(self):
        parser = SimBParser()
        parser.push(SYNC_WORD)
        parser.push(TYPE1_WRITE_FAR)
        parser.push(far_encode(1, 2))
        parser.push(TYPE1_WRITE_CMD)
        parser.push(WCFG_CMD)
        parser.push(TYPE2_WRITE_FDRI)
        with pytest.raises(SimBError):
            parser.push(0x60000004)

    def test_unknown_cmd_raises(self):
        parser = SimBParser()
        parser.push(SYNC_WORD)
        parser.push(TYPE1_WRITE_CMD)
        with pytest.raises(SimBError):
            parser.push(0x42)

    def test_incomplete_simb_detected_by_decode(self):
        words = build_simb(1, 2, 4)[:-2]
        with pytest.raises(SimBError):
            decode_simb(words)

    def test_back_to_back_simbs_intra_frame(self):
        """Two reconfigurations per frame: CIE -> ME -> CIE."""
        stream = build_simb(1, 2, 16, seed=1) + build_simb(1, 1, 16, seed=2)
        events = decode_simb(stream)
        swaps = [e for e in events if e.kind == "payload_end"]
        assert [(e.rr_id, e.module_id) for e in swaps] == [(1, 2), (1, 1)]
