"""Integration tests of the reconfiguration machinery.

IcapCtrl DMA -> ICAP artifact -> Extended Portal -> RR slot swap, with
error injection and isolation — the complete "before / during / after"
reconfiguration path of the paper.
"""

import numpy as np
import pytest

from repro.bus import DcrBus, PlbBus, PlbMemory
from repro.engines import CensusImageEngine, EngineRegs, MatchingEngine
from repro.kernel import Clock, MHz, Module, Simulator
from repro.reconfig import (
    ExtendedPortal,
    IcapArtifact,
    IcapCtrl,
    Isolation,
    RRSlot,
    XInjector,
    build_simb,
)

BITSTREAM_BASE = 0x0004_0000
MEM_SIZE = 0x0010_0000
RR_ID = 0x1


class MachineryBench:
    def __init__(self, cfg_mhz=50, arbitrated=True, payload_words=64):
        self.sim = Simulator()
        self.top = Module("top")
        self.clk = Clock("clk", MHz(100), parent=self.top)
        self.cfg_clk = Clock("cfg_clk", MHz(cfg_mhz), parent=self.top)
        self.bus = PlbBus("plb", self.clk, parent=self.top)
        self.mem = PlbMemory("mem", MEM_SIZE, parent=self.top)
        self.bus.attach_slave(self.mem, base=0, size=MEM_SIZE)
        self.dcr = DcrBus("dcr", self.clk, parent=self.top)
        self.regs = EngineRegs("eregs", base=0x40, parent=self.top)
        self.dcr.attach(self.regs)
        self.cie = CensusImageEngine(clock=self.clk, parent=self.top)
        self.me = MatchingEngine(clock=self.clk, parent=self.top)
        self.slot = RRSlot(
            "rr0", RR_ID, self.bus.attach_master("rr0"), self.regs,
            [self.cie, self.me], parent=self.top,
        )
        self.isolation = Isolation("iso", self.slot, parent=self.top)
        self.injector = XInjector("inj", self.slot, parent=self.top)
        self.portal = ExtendedPortal("portal", self.slot, self.injector, parent=self.top)
        self.icap = IcapArtifact("icap", parent=self.top)
        self.icap.register_portal(self.portal)
        self.icapctrl = IcapCtrl(
            "icapctrl", base=0x60, bus=self.bus, icap=self.icap,
            bus_clock=self.clk, cfg_clock=self.cfg_clk,
            arbitrated=arbitrated, parent=self.top,
        )
        self.dcr.attach(self.icapctrl)
        self.payload_words = payload_words
        self.sim.add_module(self.top)

    def load_simb(self, module_id, payload_words=None, base=BITSTREAM_BASE):
        words = build_simb(
            RR_ID, module_id, payload_words or self.payload_words
        )
        self.mem.load_words(base, np.array(words, dtype=np.uint32))
        return len(words)

    def start_transfer(self, size_bytes, base=BITSTREAM_BASE):
        """Program and kick the DMA via the DCR bus (as software would)."""

        def driver():
            yield from self.dcr.write(self.icapctrl.addr_of("BADDR"), base)
            yield from self.dcr.write(self.icapctrl.addr_of("BSIZE"), size_bytes)
            yield from self.dcr.write(self.icapctrl.addr_of("CTRL"), 1)

        self.sim.fork(driver())

    def run_until_done(self, timeout_us=2000):
        deadline = self.sim.time + timeout_us * 1_000_000
        while self.sim.time < deadline:
            self.sim.run(until=min(self.sim.time + 1_000_000, deadline))
            if self.icapctrl.status_done:
                return True
        return False


def test_full_reconfiguration_swaps_module():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)  # initial configuration
    n_words = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n_words * 4)
    assert bench.run_until_done()
    bench.sim.run_for(1_000_000)
    assert bench.slot.active is bench.me
    assert bench.portal.reconfigurations == 1
    assert bench.icap.words_received == n_words
    assert not bench.icap.framing_errors


def test_new_module_is_dirty_until_reset():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n_words = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n_words * 4)
    assert bench.run_until_done()
    assert bench.slot.active is bench.me
    assert not bench.me.is_reset


def test_reconfiguration_delay_tracks_simb_length_and_cfg_clock():
    """The delay is determined by bitstream transfer, not zero/constant."""
    durations = {}
    for payload in (64, 256):
        bench = MachineryBench(payload_words=payload)
        bench.slot.select(bench.cie.ENGINE_ID)
        n = bench.load_simb(bench.me.ENGINE_ID)
        t0 = bench.sim.time
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        durations[payload] = bench.portal.last_swap_duration()
    assert durations[256] > 3 * durations[64]

    slow = MachineryBench(cfg_mhz=10, payload_words=64)
    slow.slot.select(slow.cie.ENGINE_ID)
    n = slow.load_simb(slow.me.ENGINE_ID)
    slow.start_transfer(n * 4)
    assert slow.run_until_done()
    fast = MachineryBench(cfg_mhz=100, payload_words=64)
    fast.slot.select(fast.cie.ENGINE_ID)
    n = fast.load_simb(fast.me.ENGINE_ID)
    fast.start_transfer(n * 4)
    assert fast.run_until_done()
    assert slow.portal.last_swap_duration() > 3 * fast.portal.last_swap_duration()


def test_x_injected_during_reconfiguration_without_isolation():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.isolation.set_enabled(False)
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    bench.sim.run_for(1_000_000)
    # X escaped into the static region: the isolation monitor saw leaks
    assert bench.isolation.x_leaks > 0
    # and after reconfiguration the outputs are clean again
    assert not bench.slot.out_done.value.has_x


def test_isolation_blocks_x_when_enabled():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.isolation.set_enabled(True)
    bench.sim.run_for(100_000)
    leaks_before = bench.isolation.x_leaks
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    bench.sim.run_for(1_000_000)
    assert bench.isolation.x_leaks == leaks_before
    assert bench.isolation.out_done.value == 0


def test_injection_window_matches_payload():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    kinds = [r.kind for r in bench.portal.timeline]
    assert kinds == ["far", "inject_start", "swap", "desync"]
    assert bench.injector.injections == 1
    assert not bench.injector.active


def test_region_unconfigured_during_transfer():
    bench = MachineryBench(payload_words=512)
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n * 4)
    # run until mid-transfer
    for _ in range(400):
        bench.sim.run_for(1_000_000)
        if bench.injector.active:
            break
    assert bench.injector.active
    assert bench.slot.active is None
    # reset pulses are lost while unconfigured (bug.dpr.6b mechanism)
    before = bench.slot.lost_reset_pulses
    bench.regs._on_ctrl(0b10)
    assert bench.slot.lost_reset_pulses == before + 1
    assert bench.run_until_done()


def test_truncated_transfer_never_swaps():
    """bug.dpr.5: BSIZE programmed in words (4x too small)."""
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n)  # driver passes word count as BSIZE
    assert bench.run_until_done()
    bench.sim.run_for(2_000_000)
    # transfer "completed" from the DMA's point of view...
    assert bench.icapctrl.status_done
    # ...but the swap never happened: the region is stuck unconfigured
    # with error injection still active (system failure)
    assert bench.portal.reconfigurations == 0
    assert bench.slot.active is None
    assert bench.injector.active
    assert bench.icap.mid_reconfiguration


def test_point_to_point_mode_on_shared_bus_corrupts_stream():
    """bug.dpr.4: IcapCTRL in point-to-point mode on a shared PLB."""
    bench = MachineryBench(arbitrated=False)
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    bench.sim.run_for(2_000_000)
    assert bench.bus.protocol_errors > 0
    assert bench.slot.active is bench.cie  # swap never happened
    assert bench.portal.reconfigurations == 0
    assert bench.icap.ignored_words > 0


def test_fifo_never_overflows_with_flow_control():
    bench = MachineryBench(cfg_mhz=10, payload_words=256)
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    assert bench.icapctrl.fifo_overflows == 0
    assert bench.icapctrl.fifo_high_water <= bench.icapctrl.fifo_depth


def test_fifo_overflow_scenario_detectable():
    """§IV-B: SimB length/clocking chosen to provoke FIFO overflow."""
    bench = MachineryBench(cfg_mhz=5, payload_words=256)
    bench.icapctrl.ignore_fifo_space = True
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(bench.me.ENGINE_ID)
    bench.start_transfer(n * 4)
    bench.run_until_done(timeout_us=20000)
    assert bench.icapctrl.fifo_overflows > 0
    # dropped words mean the stream is corrupt: no successful swap
    assert bench.portal.reconfigurations == 0


def test_back_to_back_intra_frame_reconfigurations():
    """CIE -> ME -> CIE, the twice-per-frame swap of the demonstrator."""
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    for target in (bench.me, bench.cie):
        n = bench.load_simb(target.ENGINE_ID)
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        bench.sim.run_for(500_000)
        assert bench.slot.active is target

        def clear():
            bench.icapctrl.clear_done()
            yield from ()

        bench.sim.fork(clear())
        bench.sim.run_for(100_000)
    assert bench.portal.reconfigurations == 2
    assert bench.slot.swap_count >= 3


def test_unknown_module_id_flagged():
    bench = MachineryBench()
    bench.slot.select(bench.cie.ENGINE_ID)
    n = bench.load_simb(0x7F)  # no such engine
    bench.start_transfer(n * 4)
    assert bench.run_until_done()
    bench.sim.run_for(1_000_000)
    assert bench.portal.unknown_module_errors == 1
    assert bench.slot.active is None  # region left unconfigured
