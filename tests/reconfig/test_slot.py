"""Direct unit tests for the RR slot, isolation and injectors."""

import pytest

from repro.bus import PlbBus, PlbMemory
from repro.engines import CensusImageEngine, EngineRegs, MatchingEngine
from repro.kernel import Clock, MHz, Module, Simulator, xbits
from repro.reconfig import Isolation, NoopInjector, RRSlot, XInjector


def make_slot():
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", 4096, parent=top)
    bus.attach_slave(mem, 0, 4096)
    regs = EngineRegs("eregs", base=0x10, parent=top)
    cie = CensusImageEngine(clock=clk, parent=top)
    me = MatchingEngine(clock=clk, parent=top)
    slot = RRSlot("rr0", 0x1, bus.attach_master("rr"), regs, [cie, me], parent=top)
    iso = Isolation("iso", slot, parent=top)
    sim.add_module(top)
    return sim, top, regs, slot, iso, cie, me


class TestSlotSelection:
    def test_select_swaps_engines(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        assert slot.active is cie and cie.present
        slot.select(me.ENGINE_ID)
        assert slot.active is me and me.present and not cie.present
        assert slot.swap_count == 2

    def test_select_same_engine_is_idempotent(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        cie.is_reset = True
        slot.select(cie.ENGINE_ID)  # no swap: state untouched
        assert cie.is_reset
        assert slot.swap_count == 1

    def test_select_unknown_id_raises(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        with pytest.raises(KeyError):
            slot.select(0x55)

    def test_duplicate_engine_ids_rejected(self):
        sim = Simulator()
        top = Module("top")
        clk = Clock("clk", MHz(100), parent=top)
        bus = PlbBus("plb", clk, parent=top)
        regs = EngineRegs("eregs", base=0x10, parent=top)
        a = CensusImageEngine("a", clock=clk, parent=top)
        b = CensusImageEngine("b", clock=clk, parent=top)
        with pytest.raises(ValueError):
            RRSlot("rr0", 1, bus.attach_master("rr"), regs, [a, b], parent=top)

    def test_deselect_marks_region_empty(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        slot.deselect()
        assert slot.active is None and not cie.present
        sim.run_for(1000)
        assert slot.out_done.value.has_x  # undefined mux select


class TestPulseRouting:
    def test_pulses_reach_active_engine(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        regs._on_ctrl(0b10)  # reset
        assert cie.is_reset
        assert slot.lost_reset_pulses == 0

    def test_pulses_lost_when_empty(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        regs._on_ctrl(0b10)
        regs._on_ctrl(0b01)
        assert slot.lost_reset_pulses == 1
        assert slot.lost_start_pulses == 1
        assert not cie.is_reset and not me.is_reset

    def test_ctrl_register_self_clears(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        regs._on_ctrl(0b11)
        assert regs.peek("CTRL") == 0


class TestInjectionOverride:
    def test_injection_drives_custom_values(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)

        class Ones(XInjector):
            def injection_values(self):
                return {"done": 1, "busy": 1, "error": 0, "io": 0xAA}

        inj = Ones("inj", slot, parent=None)
        inj.inject()
        sim.run_for(1000)
        assert slot.out_done.value == 1
        assert slot.out_io.value == 0xAA
        inj.release()
        sim.run_for(1000)
        assert slot.out_done.value == 0  # back to the engine's outputs

    def test_x_injector_drives_x(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        inj = XInjector("inj", slot)
        inj.inject()
        sim.run_for(1000)
        assert slot.out_done.value.has_x
        assert slot.out_io.value.has_x

    def test_noop_injector_drives_benign_constants(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        inj = NoopInjector("inj", slot)
        inj.inject()
        sim.run_for(1000)
        assert slot.out_done.value == 0
        assert not slot.out_io.value.has_x

    def test_injection_counters(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        for _ in range(3):
            inj.inject()
            inj.release()
        assert inj.injections == 3
        assert not inj.active


class TestIsolation:
    def test_enabled_isolation_gates_x(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        iso.set_enabled(True)
        sim.run_for(1000)
        leaks0 = iso.x_leaks
        inj.inject()
        sim.run_for(10_000)
        assert iso.out_done.value == 0
        assert iso.x_leaks == leaks0

    def test_disabled_isolation_leaks_x(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        iso.set_enabled(False)
        inj.inject()
        sim.run_for(10_000)
        assert iso.out_done.value.has_x
        assert iso.x_leaks > 0

    def test_transparent_when_idle(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)
        sim.run_for(1000)
        assert iso.out_done.value == 0
        assert iso.out_busy.value == 0
