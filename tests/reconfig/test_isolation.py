"""Isolation-module contract tests (fault-tolerance satellite).

Armed isolation must absorb X completely — zero leaks, constant safe
values on every static-side output.  Disarmed isolation is transparent
and its leak counter is a precise metric: one count per *value change*
carrying X on each source signal, not one per process wake-up (the gate
re-evaluates all four paths whenever any sibling edge fires).
"""

from repro.kernel import xbits
from repro.kernel.logic import LogicVector
from repro.reconfig import XInjector

from .test_slot import make_slot


class TestArmedIsolation:
    def test_armed_absorbs_x_on_all_outputs(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        iso.set_enabled(True)
        sim.run_for(1000)
        inj.inject()
        sim.run_for(10_000)
        assert iso.x_leaks == 0
        assert iso.first_x_leak_at is None
        for sig in (iso.out_done, iso.out_busy, iso.out_error, iso.out_io):
            assert not sig.value.has_x
            assert sig.value == 0

    def test_armed_outputs_stay_constant_through_burst(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        iso.set_enabled(True)
        sim.run_for(1000)
        # toggle the injection repeatedly; static side must never move
        for _ in range(4):
            inj.inject()
            sim.run_for(2_000)
            assert iso.out_io.value == 0
            inj.release()
            sim.run_for(2_000)
            assert iso.out_io.value == 0
        assert iso.x_leaks == 0


class TestLeakCounting:
    def test_each_changed_signal_counts_exactly_once(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)  # defined baseline: engine drives 0s
        inj = XInjector("inj", slot)
        iso.set_enabled(False)
        sim.run_for(1000)
        assert iso.x_leaks == 0
        inj.inject()  # all four sources go X in one event
        sim.run_for(20_000)  # many wake-ups; values no longer change
        assert iso.x_leaks == 4

    def test_stable_x_not_recounted_on_sibling_edges(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        iso.set_enabled(False)
        slot.deselect()  # unconfigured region: all outputs X
        sim.run_for(5_000)
        leaks = iso.x_leaks
        assert leaks == 4
        # a non-X change on one path wakes the gate; the other three
        # paths still carry the *same* X value and must not re-count
        slot.set_injection(lambda: {"done": 0})  # done=0, rest default X
        sim.run_for(5_000)
        assert iso.x_leaks == leaks

    def test_new_x_value_on_same_signal_counts_again(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)  # defined baseline: engine drives 0s
        iso.set_enabled(False)
        sim.run_for(1000)
        assert iso.x_leaks == 0
        slot.set_injection(lambda: {"done": 0, "busy": 0, "error": 0,
                                    "io": xbits(8)})
        sim.run_for(5_000)
        assert iso.x_leaks == 1
        # distinct X pattern on io: a genuine new leak
        slot.set_injection(lambda: {"done": 0, "busy": 0, "error": 0,
                                    "io": LogicVector.from_string("000000xx")})
        sim.run_for(5_000)
        assert iso.x_leaks == 2

    def test_rearm_then_disarm_re_exposes_as_fresh_leak(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        inj = XInjector("inj", slot)
        iso.set_enabled(False)
        sim.run_for(1000)
        inj.inject()
        sim.run_for(5_000)
        assert iso.x_leaks == 4
        iso.set_enabled(True)  # absorb
        sim.run_for(5_000)
        assert iso.x_leaks == 4
        iso.set_enabled(False)  # X still driven: re-exposure is a leak
        sim.run_for(5_000)
        assert iso.x_leaks == 8

    def test_first_leak_timestamp_recorded_once(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        slot.select(cie.ENGINE_ID)  # defined baseline until the burst
        inj = XInjector("inj", slot)
        iso.set_enabled(False)
        sim.run_for(1000)
        assert iso.first_x_leak_at is None
        inj.inject()
        sim.run_for(5_000)
        first = iso.first_x_leak_at
        assert first is not None and first >= 1000
        inj.release()
        sim.run_for(1000)
        inj.inject()
        sim.run_for(5_000)
        assert iso.first_x_leak_at == first  # never overwritten


class TestOwnershipCheckedClear:
    def test_clear_injection_if_only_clears_own_fn(self):
        sim, top, regs, slot, iso, cie, me = make_slot()
        mine = lambda: {}
        theirs = lambda: {"done": 1}
        slot.set_injection(mine)
        assert slot.clear_injection_if(mine)
        assert not slot.injecting
        slot.set_injection(theirs)
        assert not slot.clear_injection_if(mine)  # someone else's: refuse
        assert slot.injecting
