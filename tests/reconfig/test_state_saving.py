"""State saving and restoration (the ReSim GCAPTURE/GRESTORE extension).

The companion work the paper cites ([13], FPGA'12) verifies saving a
reconfigurable module's flip-flop state through configuration readback
and restoring it when the module is configured back in.  These tests
drive the full path: GCAPTURE SimB -> ICAP readback FIFO -> IcapCTRL
readback DMA -> memory, then a restore SimB whose payload carries the
saved state and whose GRESTORE command loads it into the newly
configured module.
"""

import numpy as np
import pytest

from repro.reconfig import (
    GCAPTURE_CMD,
    GRESTORE_CMD,
    SimBError,
    SimBParser,
    build_capture_simb,
    build_restore_simb,
    build_simb,
    decode_simb,
)

from .test_machinery import BITSTREAM_BASE, RR_ID, MachineryBench

SAVE_BASE = 0x0008_0000


class TestSimBExtensions:
    def test_capture_simb_decodes(self):
        events = decode_simb(build_capture_simb(RR_ID, 6))
        kinds = [e.kind for e in events]
        assert "gcapture" in kinds
        fdro = next(e for e in events if e.kind == "fdro")
        assert fdro.size == 6
        assert kinds[-1] == "desync"

    def test_restore_simb_decodes(self):
        state = [0x57A7E002, 1, 2, 3, 4, 5]
        events = decode_simb(build_restore_simb(RR_ID, 0x2, state))
        kinds = [e.kind for e in events]
        assert "grestore" in kinds
        assert kinds.index("payload_end") < kinds.index("grestore")
        payload = [e.value for e in events if e.kind == "payload"]
        assert payload == state

    def test_gcapture_before_far_rejected(self):
        parser = SimBParser()
        parser.push(0xAA995566)
        parser.push(0x30008001)
        with pytest.raises(SimBError):
            parser.push(GCAPTURE_CMD)

    def test_grestore_before_far_rejected(self):
        parser = SimBParser()
        parser.push(0xAA995566)
        parser.push(0x30008001)
        with pytest.raises(SimBError):
            parser.push(GRESTORE_CMD)

    def test_capture_needs_positive_read(self):
        with pytest.raises(ValueError):
            build_capture_simb(RR_ID, 0)

    def test_restore_needs_state(self):
        with pytest.raises(ValueError):
            build_restore_simb(RR_ID, 1, [])


class TestEngineStateVector:
    def test_capture_restore_roundtrip(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        bench.cie.reset()
        bench.cie.frames_processed = 7
        bench.cie._lfsr = 0x1234
        state = bench.cie.capture_state()
        # scramble then restore
        bench.cie.is_reset = False
        bench.cie.frames_processed = 0
        bench.cie._lfsr = 0
        assert bench.cie.restore_state(state)
        assert bench.cie.is_reset
        assert bench.cie.frames_processed == 7
        assert bench.cie._lfsr == 0x1234

    def test_wrong_magic_rejected(self):
        bench = MachineryBench()
        state = bench.cie.capture_state()
        assert not bench.me.restore_state(state)  # CIE state into ME
        assert bench.me.restore_errors == 1

    def test_short_vector_rejected(self):
        bench = MachineryBench()
        assert not bench.cie.restore_state([bench.cie.state_magic])


def run_capture_readback(bench, read_words=6):
    """Drive capture SimB + readback DMA; returns the saved words."""
    cap = build_capture_simb(RR_ID, read_words)
    bench.mem.load_words(BITSTREAM_BASE, np.array(cap, dtype=np.uint32))
    bench.start_transfer(len(cap) * 4)
    assert bench.run_until_done()

    def rb_driver():
        # W1C acknowledge of the previous transfer's done bit
        yield from bench.dcr.write(bench.icapctrl.addr_of("STATUS"), 1)
        yield from bench.dcr.write(bench.icapctrl.addr_of("RBADDR"), SAVE_BASE)
        yield from bench.dcr.write(
            bench.icapctrl.addr_of("RBSIZE"), read_words * 4
        )
        yield from bench.dcr.write(bench.icapctrl.addr_of("CTRL"), 2)

    bench.sim.fork(rb_driver())
    assert bench.run_until_done()
    return [int(w) for w in bench.mem.dump_words(SAVE_BASE, read_words)]


class TestFullSaveRestorePath:
    def test_capture_readback_to_memory(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        bench.cie.reset()
        bench.cie.frames_processed = 3
        saved = run_capture_readback(bench)
        assert saved == bench.cie.capture_state()
        assert bench.icapctrl.readbacks_completed == 1
        assert bench.portal.captures == 1

    def test_save_swap_restore_resumes_state(self):
        """The headline flow: save CIE, run ME, restore CIE with state."""
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        bench.cie.reset()
        bench.cie.frames_processed = 5
        saved = run_capture_readback(bench)

        # swap to ME (ordinary configuration; CIE state would be lost)
        n = bench.load_simb(bench.me.ENGINE_ID)
        def clear():
            bench.icapctrl.clear_done()
            yield from ()
        bench.sim.fork(clear())
        bench.start_transfer(n * 4)
        assert bench.run_until_done()
        assert bench.slot.active is bench.me

        # configure the CIE back WITH its saved state
        restore = build_restore_simb(RR_ID, bench.cie.ENGINE_ID, saved)
        bench.mem.load_words(BITSTREAM_BASE, np.array(restore, dtype=np.uint32))
        bench.sim.fork(clear())
        bench.start_transfer(len(restore) * 4)
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)

        assert bench.slot.active is bench.cie
        assert bench.portal.restores == 1
        assert bench.cie.frames_processed == 5  # state survived the swap
        assert bench.cie.is_reset  # restored state includes reset status

    def test_plain_reconfiguration_loses_state(self):
        """Contrast: without GRESTORE the module powers up dirty."""
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        bench.cie.reset()
        bench.cie.frames_processed = 5
        for target in (bench.me.ENGINE_ID, bench.cie.ENGINE_ID):
            n = bench.load_simb(target)
            def clear():
                bench.icapctrl.clear_done()
                yield from ()
            bench.sim.fork(clear())
            bench.start_transfer(n * 4)
            assert bench.run_until_done()
        assert bench.slot.active is bench.cie
        assert not bench.cie.is_reset  # dirty, and...
        # (counter state is a Python attr so it persists in the model;
        # the architectural contract is the is_reset/dirty flag)

    def test_capture_with_empty_region_flags_error(self):
        bench = MachineryBench()
        bench.slot.deselect()
        saved = run_capture_readback(bench)
        assert bench.portal.capture_errors == 1
        assert all(w == bench.icap.READBACK_PAD for w in saved)

    def test_readback_underflow_pads(self):
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        saved = run_capture_readback(bench, read_words=10)
        assert saved[:6] == bench.cie.capture_state()
        assert all(w == bench.icap.READBACK_PAD for w in saved[6:])

    def test_restore_wrong_module_state_fails(self):
        """Integration bug: restoring the CIE's state into the ME."""
        bench = MachineryBench()
        bench.slot.select(bench.cie.ENGINE_ID)
        bench.cie.reset()
        saved = run_capture_readback(bench)
        restore = build_restore_simb(RR_ID, bench.me.ENGINE_ID, saved)
        bench.mem.load_words(BITSTREAM_BASE, np.array(restore, dtype=np.uint32))

        def clear():
            bench.icapctrl.clear_done()
            yield from ()

        bench.sim.fork(clear())
        bench.start_transfer(len(restore) * 4)
        assert bench.run_until_done()
        bench.sim.run_for(1_000_000)
        assert bench.slot.active is bench.me
        assert bench.portal.restore_failures == 1
        assert not bench.me.is_reset  # left dirty: the bug is observable
