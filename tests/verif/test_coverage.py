"""Tests for the DPR functional-coverage collector."""

import pytest

from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig
from repro.verif import DprCoverage

SMALL = dict(width=48, height=32, simb_payload_words=128)


def run_covered(method="resim", n_frames=1):
    config = SystemConfig(method=method, **SMALL)
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    cov = DprCoverage(system)
    cov.start(sim)
    sim.fork(software.run(n_frames), "software", owner=software)
    sim.run_until_event(software.run_complete, timeout=800_000_000)
    cov.finalize(software)
    return cov, system, software


@pytest.fixture(scope="module")
def resim_cov():
    return run_covered("resim")


@pytest.fixture(scope="module")
def vmux_cov():
    return run_covered("vmux")


def test_resim_covers_all_dpr_aspects(resim_cov):
    cov, system, software = resim_cov
    assert software.finished
    assert cov.missing() == [], cov.report()
    assert cov.score == 1.0


def test_vmux_coverage_holes(vmux_cov):
    """The paper's argument, as coverage: VMux never exercises the
    bitstream transfer, injection windows, or the isolation logic."""
    cov, system, software = vmux_cov
    assert software.finished
    missing = set(cov.missing())
    assert "bitstream_transfer" in missing
    assert "injection_window" in missing
    assert "isolation_armed" in missing
    assert "phase_during" in missing
    assert cov.score < 0.7


def test_coverage_report_format(resim_cov):
    cov, *_ = resim_cov
    text = cov.report()
    assert "DPR coverage:" in text
    assert "[x] bitstream_transfer" in text


def test_cover_point_counts_grow_with_frames():
    cov1, *_ = run_covered("resim", n_frames=1)
    cov2, *_ = run_covered("resim", n_frames=2)
    assert (
        cov2.points["bitstream_transfer"].hits
        > cov1.points["bitstream_transfer"].hits
    )


def test_unknown_point_rejected(resim_cov):
    cov, *_ = resim_cov
    with pytest.raises(KeyError):
        cov.hit("nonexistent")


def test_report_lists_never_hit_points_with_descriptions(vmux_cov):
    """The report must name every hole, not just tally hits."""
    cov, *_ = vmux_cov
    text = cov.report()
    assert "never hit (" in text
    assert "- bitstream_transfer: IcapCTRL completed a bitstream DMA" in text
    assert "- injection_window: error injection active during a transfer" in text
    # the section lists exactly the uncovered points
    listed = {
        line.strip()[2:].split(":")[0]
        for line in text.splitlines()
        if line.strip().startswith("- ")
    }
    assert listed == set(cov.missing())


def test_fully_covered_report_has_no_never_hit_section(resim_cov):
    cov, *_ = resim_cov
    assert "never hit" not in cov.report()


def test_coverage_json_dict(vmux_cov):
    cov, *_ = vmux_cov
    data = cov.to_json_dict()
    assert data["total"] == cov.total
    assert data["covered"] == cov.covered
    assert set(data["never_hit"]) == set(cov.missing())
    assert data["hits"]["swap_to_cie"] >= 1
    assert data["hits"]["bitstream_transfer"] == 0


def test_point_names_matches_declared_points(resim_cov):
    from repro.verif.coverage import point_names

    cov, *_ = resim_cov
    assert sorted(point_names()) == sorted(cov.points)
