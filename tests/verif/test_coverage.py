"""Tests for the DPR functional-coverage collector."""

import pytest

from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig
from repro.verif import DprCoverage

SMALL = dict(width=48, height=32, simb_payload_words=128)


def run_covered(method="resim", n_frames=1):
    config = SystemConfig(method=method, **SMALL)
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    cov = DprCoverage(system)
    cov.start(sim)
    sim.fork(software.run(n_frames), "software", owner=software)
    sim.run_until_event(software.run_complete, timeout=800_000_000)
    cov.finalize(software)
    return cov, system, software


@pytest.fixture(scope="module")
def resim_cov():
    return run_covered("resim")


@pytest.fixture(scope="module")
def vmux_cov():
    return run_covered("vmux")


def test_resim_covers_all_dpr_aspects(resim_cov):
    cov, system, software = resim_cov
    assert software.finished
    assert cov.missing() == [], cov.report()
    assert cov.score == 1.0


def test_vmux_coverage_holes(vmux_cov):
    """The paper's argument, as coverage: VMux never exercises the
    bitstream transfer, injection windows, or the isolation logic."""
    cov, system, software = vmux_cov
    assert software.finished
    missing = set(cov.missing())
    assert "bitstream_transfer" in missing
    assert "injection_window" in missing
    assert "isolation_armed" in missing
    assert "phase_during" in missing
    assert cov.score < 0.7


def test_coverage_report_format(resim_cov):
    cov, *_ = resim_cov
    text = cov.report()
    assert "DPR coverage:" in text
    assert "[x] bitstream_transfer" in text


def test_cover_point_counts_grow_with_frames():
    cov1, *_ = run_covered("resim", n_frames=1)
    cov2, *_ = run_covered("resim", n_frames=2)
    assert (
        cov2.points["bitstream_transfer"].hits
        > cov1.points["bitstream_transfer"].hits
    )


def test_unknown_point_rejected(resim_cov):
    cov, *_ = resim_cov
    with pytest.raises(KeyError):
        cov.hit("nonexistent")
