"""Interp-vs-codegen parity at the system level.

The codegen backend's contract is observational identity: everything a
report serializes — scoreboard verdicts, coverage hits, interrupt and
monitor counts, DCR read-back, simulated time — must be byte-identical
to the interpreter's, because campaign and fuzz reports are
byte-compared across runs.  These tests run the same scenario under
both backends and compare the canonical JSON.
"""

import pytest

from repro.analysis.reporting import canonical_json
from repro.system.scenarios import scenario
from repro.verif import run_system
from repro.verif.fuzz import ScenarioGenerator, _run_side, _side_json


def _fuzz_side_json(backend: str, method: str) -> str:
    sc = ScenarioGenerator(2013, None).scenario(0)
    return canonical_json(_side_json(_run_side(sc, method, backend)))


@pytest.mark.parametrize("method", ["resim", "vmux"])
def test_fuzz_side_bytes_identical_across_backends(method):
    assert _fuzz_side_json("interp", method) == _fuzz_side_json(
        "codegen", method
    )


def test_tiny_run_observables_identical_across_backends():
    def snap(backend):
        result = run_system(
            scenario("tiny", backend=backend), n_frames=2
        )
        return {
            "summary": result.summary(),
            "sim_time_ps": result.sim_time_ps,
            "frames": [
                result.frames_processed,
                result.frames_drawn,
                result.frames_dropped,
            ],
            "checks": [
                [c.feat_ok, c.vec_ok, c.overlay_ok] for c in result.checks
            ],
            "monitors": dict(sorted(result.monitors.items())),
            "anomalies": list(result.anomalies),
            "kernel_events": result.kernel_events,
        }

    assert canonical_json(snap("interp")) == canonical_json(snap("codegen"))


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown execution backend"):
        scenario("tiny", backend="fast")
