"""Tests for the passive protocol monitors."""

import pytest

from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig
from repro.verif import (
    PlbTrafficMonitor,
    ReconfigWindowChecker,
    SignalTraceMonitor,
)

SMALL = dict(width=48, height=32, simb_payload_words=128)


@pytest.fixture(scope="module")
def monitored_run():
    config = SystemConfig(**SMALL)
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    traffic = PlbTrafficMonitor(system.bus)
    irq_trace = SignalTraceMonitor(sim, system.intc.irq)
    done_trace = SignalTraceMonitor(sim, system.isolation.out_done)
    sim.fork(software.run(1), "software", owner=software)
    sim.run_until_event(software.run_complete, timeout=800_000_000)
    assert software.finished
    return system, software, traffic, irq_trace, done_trace


def test_traffic_monitor_records_all_masters(monitored_run):
    system, software, traffic, *_ = monitored_run
    summary = traffic.summary()
    assert "rr0" in summary  # the engines
    assert "icapctrl_dma" in summary  # the bitstream DMA
    assert "cpu" in summary  # the drawer
    assert "video_in" in summary


def test_traffic_monitor_beat_totals_match_bus_counters(monitored_run):
    system, software, traffic, *_ = monitored_run
    assert sum(e["beats"] for e in traffic.summary().values()) == (
        system.bus.total_beats
    )
    assert len(traffic.records) == system.bus.total_transactions


def test_bitstream_window_reads(monitored_run):
    """The DMA reads exactly the bitstream regions of memory."""
    system, software, traffic, *_ = monitored_run
    mm = system.memory_map
    dma = [r for r in traffic.by_master("icapctrl_dma")]
    assert dma and all(r.is_read for r in dma)
    bs_span = traffic.in_window(mm.bs_cie, mm.bs_me + 0x2000)
    assert set(r.master for r in bs_span) == {"icapctrl_dma"}


def test_transaction_latency_positive(monitored_run):
    *_, traffic, _, _ = (None, None) + monitored_run[2:]
    for r in traffic.records[:50]:
        assert r.latency_ps is None or r.latency_ps > 0


def test_irq_trace_sees_two_engine_interrupts(monitored_run):
    system, software, traffic, irq_trace, done_trace = monitored_run
    assert len(irq_trace.rising_edges()) >= 2
    assert irq_trace.x_excursions == 0


def test_done_trace_clean_pulses(monitored_run):
    system, software, traffic, irq_trace, done_trace = monitored_run
    # isolation was armed during reconfigs, so no X ever reached the
    # static side of the done line
    assert done_trace.x_excursions == 0
    assert len(done_trace.rising_edges()) == 2  # CIE done + ME done


def test_value_at_or_before(monitored_run):
    *_, done_trace = monitored_run
    edges = done_trace.rising_edges()
    assert done_trace.value_at_or_before(edges[0]) == "1"


def test_region_bus_silent_during_reconfiguration(monitored_run):
    system, software, traffic, *_ = monitored_run
    checker = ReconfigWindowChecker(
        traffic, system.artifacts.portal("video_rr"), rr_master="rr0"
    )
    assert checker.ok, checker.violations
