"""Combined-fault runs: multiple historical bugs injected at once.

The real project had several latent bugs simultaneously; detection
must be monotone — adding more faults never makes a detected system
look healthy.
"""

import pytest

from repro.system import SystemConfig
from repro.verif import run_system

SMALL = dict(width=48, height=32, simb_payload_words=128)


def run(method, faults, n_frames=1):
    return run_system(
        SystemConfig(method=method, faults=frozenset(faults), **SMALL),
        n_frames=n_frames,
    )


def test_all_dpr_bugs_together_detected_by_resim():
    res = run("resim", {"dpr.1", "dpr.2", "dpr.3", "dpr.4", "dpr.5"})
    assert res.detected
    # dpr.4 corrupts the transfer before anything else can matter
    assert res.monitors["plb_protocol_errors"] > 0


def test_all_dpr_bugs_together_missed_by_vmux():
    res = run("vmux", {"dpr.1", "dpr.2", "dpr.3", "dpr.4", "dpr.5", "dpr.6b"})
    assert not res.detected


def test_dpr_plus_static_bug_under_vmux_sees_only_static():
    res = run("vmux", {"dpr.4", "hw.s3"}, n_frames=1)
    assert res.detected  # the static width bug is visible
    # but no reconfiguration-machinery evidence exists
    assert res.monitors["plb_protocol_errors"] == 0
    assert res.monitors["isolation_x_leaks"] == 0


def test_isolation_plus_chain_bug_shows_both_signatures():
    res = run("resim", {"dpr.1", "dpr.2"})
    assert res.detected
    assert res.monitors["intc_x_violations"] > 0  # dpr.1 signature
    assert res.monitors["dcr_chain_breaks"] > 0  # dpr.2 signature


def test_detection_monotone_under_fault_addition():
    base = run("resim", {"dpr.3"})
    more = run("resim", {"dpr.3", "dpr.1"})
    assert base.detected and more.detected
    assert len(more.anomalies) >= 1


def test_false_alarm_plus_real_bug_under_vmux():
    """hw.2 hangs the vmux simulation immediately; the real DPR bug
    behind it stays invisible either way."""
    res = run("vmux", {"hw.2", "dpr.5"})
    assert res.detected
    assert res.frames_drawn == 0
