"""Tests for the coverage-closure fuzzer and its differential harness."""

import pytest

from repro.analysis.reporting import canonical_json
from repro.system.scenarios import FUZZ_CONSTRAINTS
from repro.verif.coverage import point_names
from repro.verif.fuzz import (
    FUZZ_TRANSIENT_POOL,
    VMUX_BLIND_POINTS,
    FuzzScenario,
    ScenarioGenerator,
    run_differential,
    run_fuzz_campaign,
    scenario_from_dict,
)

pytestmark = pytest.mark.fuzz


# ----------------------------------------------------------------------
# Constrained-random generation
# ----------------------------------------------------------------------
def test_generator_is_deterministic():
    a = ScenarioGenerator(2013)
    b = ScenarioGenerator(2013)
    for i in range(10):
        assert a.scenario(i) == b.scenario(i)


def test_generator_varies_by_seed_and_index():
    gen = ScenarioGenerator(2013)
    assert gen.scenario(0) != gen.scenario(1)
    assert gen.scenario(0) != ScenarioGenerator(7).scenario(0)


def test_generated_scenarios_respect_constraints():
    gen = ScenarioGenerator(99)
    for i in range(25):
        s = gen.scenario(i)
        s.validate()  # raises on any out-of-range field
        for key, frac in s.transients:
            assert key in FUZZ_TRANSIENT_POOL
            assert 0.0 <= frac <= 1.0
        assert len(s.transients) <= FUZZ_CONSTRAINTS["n_transients"].hi


def test_generator_rejects_unknown_divergence_key():
    with pytest.raises(KeyError):
        ScenarioGenerator(1, inject_divergence="bogus")


def test_scenario_json_roundtrip():
    s = ScenarioGenerator(2013, inject_divergence="sw.1").scenario(3)
    assert scenario_from_dict(s.to_json_dict()) == s


def test_validate_rejects_illegal_values():
    base = ScenarioGenerator(1).scenario(0)
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(base, width=13).validate()
    with pytest.raises(ValueError):
        dataclasses.replace(
            base, transients=(("x_burst", 0.5),)
        ).validate()
    with pytest.raises(ValueError):
        dataclasses.replace(
            base, transients=(("dma_stall", 1.5),)
        ).validate()
    with pytest.raises(ValueError):
        dataclasses.replace(base, divergence_fault="bogus").validate()


def test_blind_point_set_is_within_coverage_model():
    assert VMUX_BLIND_POINTS <= set(point_names())


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------
def _one_frame_scenario(**overrides) -> FuzzScenario:
    values = dict(
        index=0, seed=11, n_frames=1, width=24, height=16, n_objects=1,
        scene_seed=3, radius=1, simb_payload_words=64, cfg_mhz=100.0,
        fault_tolerance=False, watchdog_cycles=512,
        max_reconfig_attempts=1, retry_backoff_cycles=32,
    )
    values.update(overrides)
    return FuzzScenario(**values)


@pytest.fixture(scope="module")
def clean_record():
    return run_differential(_one_frame_scenario())


def test_clean_differential_has_no_real_divergence(clean_record):
    assert not clean_record.failed
    assert clean_record.signature == ()


def test_expected_divergences_cite_unreachable_points(clean_record):
    assert clean_record.diffs, "ReSim-only machinery should diverge"
    for d in clean_record.diffs:
        assert d.classification == "expected"
        assert d.cover_point in VMUX_BLIND_POINTS
        # the excuse is only valid while the point is vmux-unreachable
        assert clean_record.vmux.coverage.get(d.cover_point, 0) == 0


def test_both_sides_observed_same_stimulus(clean_record):
    r, v = clean_record.resim, clean_record.vmux
    assert r.frames_drawn == v.frames_drawn == 1
    assert r.checks == v.checks
    assert r.interrupts["engine_done"] == v.interrupts["engine_done"]


# ----------------------------------------------------------------------
# Coverage-closure campaign
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign():
    return run_fuzz_campaign(budget=8, seed=2013, jobs=2, wave_size=4)


def test_campaign_closes_resim_coverage(campaign):
    assert campaign.closed, f"never hit: {campaign.never_hit}"
    assert campaign.ok
    assert not campaign.real_failures


def test_campaign_stops_early_once_closed(campaign):
    assert campaign.stopped_early
    assert len(campaign.records) < campaign.budget


def test_campaign_report_bytes_identical_across_jobs(campaign):
    serial = run_fuzz_campaign(budget=8, seed=2013, jobs=1, wave_size=4)
    assert canonical_json(serial.to_json_dict()) == canonical_json(
        campaign.to_json_dict()
    )


def test_campaign_survives_worker_crash(campaign):
    crashed = run_fuzz_campaign(
        budget=8, seed=2013, jobs=2, wave_size=4,
        fault_injection={"fuzz:1": "crash"},
    )
    assert crashed.worker_crashes >= 1
    # the crashed task was retried on a fresh worker: same report bytes
    assert canonical_json(crashed.to_json_dict()) == canonical_json(
        campaign.to_json_dict()
    )


def test_injected_divergence_surfaces_as_real_failure():
    report = run_fuzz_campaign(
        budget=1, seed=2013, jobs=1, wave_size=1, inject_divergence="sw.1"
    )
    assert report.real_failures
    assert not report.ok
    record = report.records[report.real_failures[0]]
    assert record.signature
    assert all(d.classification == "real" for d in record.real_diffs)


def test_campaign_validates_arguments():
    with pytest.raises(ValueError):
        run_fuzz_campaign(budget=0)
    with pytest.raises(ValueError):
        run_fuzz_campaign(budget=1, wave_size=0)
    with pytest.raises(KeyError):
        run_fuzz_campaign(budget=1, inject_divergence="bogus")
