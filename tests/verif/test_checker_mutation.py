"""Mutation smoke tests: deliberately corrupt the system and assert the
checkers FAIL.

A verification stack is only as good as its ability to go red: a
scoreboard or differential harness that silently passes corrupted runs
is worse than none.  Each test here injects one deliberate corruption —
a flipped frame word, a dropped interrupt, a stale DCR value — and
asserts the corresponding checker reports the failure.
"""

import numpy as np
import pytest

from repro.kernel import Timer
from repro.system.scenarios import scenario
from repro.verif import run_system
from repro.verif.fuzz import FuzzScenario, diff_sides, run_differential

pytestmark = pytest.mark.fuzz


def _tiny_scenario(**overrides) -> FuzzScenario:
    values = dict(
        index=0,
        seed=1,
        n_frames=1,
        width=24,
        height=16,
        n_objects=1,
        scene_seed=0,
        radius=1,
        simb_payload_words=64,
        cfg_mhz=100.0,
        fault_tolerance=False,
        watchdog_cycles=512,
        max_reconfig_attempts=1,
        retry_backoff_cycles=32,
    )
    values.update(overrides)
    return FuzzScenario(**values)


# ----------------------------------------------------------------------
# Scoreboard mutations (full-simulation corruption)
# ----------------------------------------------------------------------
def test_flipped_frame_word_fails_scoreboard():
    """One flipped bit in a produced feature word must go red."""

    def prepare(system, software, sim):
        mm = system.memory_map

        def corrupter():
            # poll until the CIE has produced frame 0's features (most
            # census words are zero background — scan for any nonzero
            # one), then flip one bit of it, before the frame's
            # scoreboard check at frame_drawn
            n_words = mm.frame_bytes // 4
            while True:
                yield Timer(1_000_000)
                words = system.memory.dump_words(mm.feat[0], n_words)
                nonzero = np.flatnonzero(words)
                if len(nonzero):
                    index = int(nonzero[0])
                    system.memory.load_words(
                        mm.feat[0] + index * 4,
                        np.array([int(words[index]) ^ 0x1], dtype=np.uint32),
                    )
                    return

        sim.fork(corrupter(), "mutation.flip_frame_word")

    result = run_system(scenario("tiny"), n_frames=1, prepare=prepare)
    assert not result.hung
    assert result.checks, "scoreboard never checked a frame"
    assert not all(c.ok for c in result.checks), (
        "scoreboard stayed green through a corrupted feature buffer"
    )
    assert result.detected


def test_clean_run_scoreboard_is_green():
    """Control for the mutation: the same run uncorrupted passes."""
    result = run_system(scenario("tiny"), n_frames=1)
    assert not result.detected
    assert all(c.ok for c in result.checks)


def test_dropped_interrupt_is_detected():
    """Severing interrupt delivery must surface as an anomaly, not a
    pass (the driver's ISR timeout records it and aborts the run)."""

    def prepare(system, software, sim):
        def dropper():
            # after frame 0 completes (boot's IER write is long done),
            # break the enable path — every later interrupt is lost
            yield software.frame_drawn.wait()
            system.intc._enabled = 0

        sim.fork(dropper(), "mutation.drop_interrupt")

    result = run_system(scenario("tiny"), n_frames=2)
    clean_frames = result.frames_processed

    mutated = run_system(scenario("tiny"), n_frames=2, prepare=prepare)
    assert mutated.detected
    assert mutated.frames_processed < clean_frames
    assert any(
        "interrupt never arrived" in a for a in mutated.anomalies
    ), mutated.anomalies


# ----------------------------------------------------------------------
# Differential-harness mutations (doctored side results)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clean_record():
    record = run_differential(_tiny_scenario())
    assert not record.failed, "baseline differential must be clean"
    return record


def test_stale_dcr_value_fails_differential(clean_record):
    """A stale engine register read-back must classify as real."""
    record = clean_record
    stale = dict(record.vmux.dcr)
    stale["engine_regs.WIDTH"] = 0xDEAD  # never programmed this run
    doctored = type(record.vmux)(**{**vars(record.vmux), "dcr": stale})
    diffs = diff_sides(record.scenario, record.resim, doctored)
    real = [d for d in diffs if d.classification == "real"]
    assert any(d.field == "dcr:engine_regs.WIDTH" for d in real)


def test_dropped_interrupt_count_fails_differential(clean_record):
    """One missing engine-done raise must classify as real."""
    record = clean_record
    interrupts = dict(record.vmux.interrupts)
    assert interrupts.get("engine_done", 0) > 0
    interrupts["engine_done"] -= 1
    doctored = type(record.vmux)(
        **{**vars(record.vmux), "interrupts": interrupts}
    )
    diffs = diff_sides(record.scenario, record.resim, doctored)
    real = [d for d in diffs if d.classification == "real"]
    assert any(d.field == "irq:engine_done" for d in real)


def test_flipped_scoreboard_verdict_fails_differential(clean_record):
    """A flipped per-frame check tuple must classify as real."""
    record = clean_record
    checks = tuple(
        (not f, v, o) if i == 0 else (f, v, o)
        for i, (f, v, o) in enumerate(record.vmux.checks)
    )
    doctored = type(record.vmux)(**{**vars(record.vmux), "checks": checks})
    diffs = diff_sides(record.scenario, record.resim, doctored)
    real = [d for d in diffs if d.classification == "real"]
    assert any(d.field == "checks" for d in real)


def test_expected_divergence_not_misreported_as_real(clean_record):
    """Control: the structural ReSim-only fields stay classified
    expected — the mutation tests above must not pass because *every*
    divergence is called real."""
    assert clean_record.diffs, "structural divergences should exist"
    assert all(
        d.classification == "expected" for d in clean_record.diffs
    )
