"""Tests for the failing-case shrinker and the replay-file round trip."""

import json

import pytest

from repro.system.scenarios import FUZZ_CONSTRAINTS
from repro.verif.fuzz import FuzzRecord, FuzzReport, ScenarioGenerator, run_differential
from repro.verif.shrink import (
    load_replay_file,
    replay,
    shrink_first_failure,
    shrink_scenario,
    signature_preserved,
    write_replay_file,
)

pytestmark = pytest.mark.fuzz


# ----------------------------------------------------------------------
# Pure pieces
# ----------------------------------------------------------------------
def test_signature_preservation_is_subset_shaped():
    original = ("checks", "detected", "dcr:engine_regs.SRC1")
    assert signature_preserved(original, original)
    assert signature_preserved(original, ("checks",))
    # a new failure field means a different bug: rejected
    assert not signature_preserved(original, ("checks", "hung"))
    # a candidate that no longer fails is rejected
    assert not signature_preserved(original, ())


def test_choice_constraint_shrinks_left_only():
    width = FUZZ_CONSTRAINTS["width"]
    assert width.shrink_candidates(48) == [24, 32]
    assert width.shrink_candidates(24) == []
    assert width.shrink_candidates(999) == []  # illegal value: nothing


def test_range_constraint_shrinks_aggressively_first():
    frames = FUZZ_CONSTRAINTS["n_frames"]
    candidates = frames.shrink_candidates(4)
    assert candidates[0] == 1  # most aggressive reduction leads
    assert all(frames.lo <= c < 4 for c in candidates)
    assert frames.shrink_candidates(frames.lo) == []


# ----------------------------------------------------------------------
# End-to-end shrinking of the seeded injected divergence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def original_signature():
    scenario = ScenarioGenerator(2013, inject_divergence="sw.1").scenario(0)
    record = run_differential(scenario)
    assert record.failed
    return scenario, record.signature


@pytest.fixture(scope="module")
def shrunk(original_signature):
    scenario, signature = original_signature
    return shrink_scenario(scenario, signature, max_evals=48)


def test_shrinks_to_at_most_two_frames(shrunk):
    # sw.1 swaps the current/previous feature buffers in the ME
    # program — a no-op with a single frame, so two frames is the
    # true minimum and the shrinker must find it
    assert shrunk.scenario.n_frames <= 2
    assert shrunk.reduced
    assert shrunk.evals <= 48


def test_shrunk_scenario_still_fails_with_preserved_signature(
    original_signature, shrunk
):
    _, original = original_signature
    assert shrunk.record is not None
    assert shrunk.record.failed
    assert shrunk.signature == shrunk.record.signature
    assert signature_preserved(original, shrunk.signature)


def test_shrink_reduces_geometry_too(shrunk):
    original, minimized = shrunk.original, shrunk.scenario
    assert minimized.width <= original.width
    assert minimized.height <= original.height
    assert minimized.simb_payload_words <= original.simb_payload_words


def test_replay_file_roundtrip(shrunk, tmp_path):
    path = tmp_path / "repro.json"
    write_replay_file(path, shrunk, campaign_seed=2013)
    scenario, signature = load_replay_file(path)
    assert scenario == shrunk.scenario
    assert signature == shrunk.signature

    reproduced, record, expected = replay(path)
    assert reproduced
    assert record.signature == expected


def test_replay_file_is_canonical_json(shrunk, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_replay_file(a, shrunk, campaign_seed=2013)
    write_replay_file(b, shrunk, campaign_seed=2013)
    assert a.read_bytes() == b.read_bytes()
    data = json.loads(a.read_text())
    assert data["kind"] == "repro-fuzz-replay"
    assert data["shrunk_from"]["n_frames"] >= data["scenario"]["n_frames"]


def test_replay_rejects_foreign_files(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError, match="not a fuzz replay"):
        load_replay_file(path)
    path.write_text(json.dumps({"kind": "repro-fuzz-replay", "version": 99}))
    with pytest.raises(ValueError, match="version"):
        load_replay_file(path)


def test_shrink_first_failure_skips_fleet_errors():
    scenario = ScenarioGenerator(1).scenario(0)
    report = FuzzReport(seed=1, budget=1, wave_size=1)
    report.records.append(
        FuzzRecord(scenario=scenario, resim=None, vmux=None,
                   error="fleet: run failed (worker crash)")
    )
    assert shrink_first_failure(report) is None
    assert report.shrink is None
