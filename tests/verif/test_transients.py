"""The transient catalogue and the seeded soak campaign.

The determinism guard is the load-bearing test here: running the same
campaign twice with the same seed must produce byte-identical canonical
JSON, because the whole point of seeded injection is that a failing
soak run can be replayed exactly from its seed.
"""

import json

import pytest

from repro.analysis.reporting import canonical_json
from repro.verif import TRANSIENTS, run_soak_campaign
from repro.verif.transients import SoakReport


EXPECTED_KEYS = {
    "payload_bitflip",
    "truncated_simb",
    "dma_stall",
    "fifo_backpressure",
    "x_burst",
}


class TestCatalogue:
    def test_five_transients_registered(self):
        assert set(TRANSIENTS) == EXPECTED_KEYS

    def test_specs_are_complete(self):
        for spec in TRANSIENTS.values():
            assert spec.title and spec.description
            assert callable(spec.arm)

    def test_unknown_transient_rejected(self):
        with pytest.raises(KeyError, match="no_such"):
            run_soak_campaign(transients=["no_such"])


class TestRecovery:
    def test_bitflip_detected_and_recovered_under_resim(self):
        report = run_soak_campaign(
            methods=("resim",), transients=["payload_bitflip"],
            frames=2, seed=7,
        )
        (run,) = report.runs
        assert run.outcome == "recovered"
        assert run.detected_at_ps is not None
        assert run.detected_at_ps >= run.injected_at_ps
        assert run.result.monitors["simb_crc_failures"] >= 1
        # the driver retried with a refreshed image and finished clean
        assert any("attempt" in msg for _, msg in run.result.recovery_log)
        assert all(c.ok for c in run.result.checks)
        assert not run.result.hung

    def test_dma_stall_aborted_by_watchdog_under_resim(self):
        report = run_soak_campaign(
            methods=("resim",), transients=["dma_stall"],
            frames=2, seed=7,
        )
        (run,) = report.runs
        assert run.outcome == "recovered"
        assert run.result.monitors["icapctrl_transfer_aborts"] >= 1
        assert not run.result.hung

    def test_bitstream_transients_masked_under_vmux(self):
        """The paper's point: VMux never exercises the DPR datapath."""
        report = run_soak_campaign(
            methods=("vmux",), transients=["payload_bitflip", "dma_stall"],
            frames=2, seed=7,
        )
        assert [r.outcome for r in report.runs] == ["masked", "masked"]

    def test_no_silent_corruption_or_hangs(self):
        report = run_soak_campaign(frames=2, seed=7)
        assert isinstance(report, SoakReport)
        assert report.ok
        assert len(report.runs) == 2 * len(TRANSIENTS)
        for run in report.runs:
            assert run.outcome != "silent-corruption"
            assert not run.result.hung


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        kwargs = dict(
            methods=("resim",),
            transients=["payload_bitflip", "fifo_backpressure"],
            frames=2,
            seed=11,
        )
        a = canonical_json(run_soak_campaign(**kwargs).to_json_dict())
        b = canonical_json(run_soak_campaign(**kwargs).to_json_dict())
        assert a == b

    def test_different_seed_moves_injection(self):
        common = dict(
            methods=("resim",), transients=["payload_bitflip"], frames=2
        )
        a = run_soak_campaign(seed=1, **common)
        b = run_soak_campaign(seed=2, **common)
        assert a.runs[0].injected_at_ps != b.runs[0].injected_at_ps

    def test_json_dict_is_serializable_and_wall_clock_free(self):
        report = run_soak_campaign(
            methods=("resim",), transients=["dma_stall"], frames=2, seed=7
        )
        text = json.dumps(report.to_json_dict())
        assert "elapsed" not in text
