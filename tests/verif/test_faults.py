"""Tests for the bug catalogue."""

import pytest

from repro.verif import BUGS, validate_fault_keys
from repro.verif.faults import DPR_PHASE_BUGS, STATIC_PHASE_BUGS


def test_table3_bugs_present():
    for key in ("hw.2", "dpr.4", "dpr.5", "dpr.6b"):
        assert key in BUGS


def test_figure5_tally():
    """Weeks 10-11: 2 software bugs + 6 DPR bugs (paper §V-A)."""
    late = [BUGS[k] for k in DPR_PHASE_BUGS]
    sw = [b for b in late if b.layer == "software" and b.kind == "static"]
    dpr = [b for b in late if b.kind == "dpr"]
    assert len(sw) == 2
    assert len(dpr) == 6


def test_three_costly_static_bugs_weeks_6_to_9():
    costly = [
        b for b in BUGS.values() if b.kind == "static" and 6 <= b.week_found <= 9
    ]
    assert len(costly) == 3


def test_expected_detectors_consistent():
    for bug in BUGS.values():
        assert set(bug.expected_detectors) <= {"vmux", "resim"}
        if bug.kind == "dpr":
            assert bug.expected_detectors == ("resim",)
        if bug.is_false_alarm:
            assert bug.expected_detectors == ("vmux",)


def test_validate_fault_keys():
    assert validate_fault_keys(["dpr.4", "sw.1"]) == frozenset({"dpr.4", "sw.1"})
    with pytest.raises(KeyError):
        validate_fault_keys(["nope"])


def test_phase_partitions_cover_all_bugs():
    assert set(STATIC_PHASE_BUGS) | set(DPR_PHASE_BUGS) == set(BUGS)
    assert not set(STATIC_PHASE_BUGS) & set(DPR_PHASE_BUGS)
