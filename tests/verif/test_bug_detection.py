"""Bug-detection tests — each Table III row as an executable assertion.

Campaign runs are expensive, so each bug gets its own focused test at
small geometry rather than running the whole matrix (the full matrix is
the Table III benchmark).
"""

import pytest

from repro.system import SystemConfig
from repro.verif import run_system

TINY = dict(width=48, height=32, simb_payload_words=128)


def run_with(method, fault=None, n_frames=2, **overrides):
    params = dict(TINY)
    params.update(overrides)
    faults = frozenset({fault}) if fault else frozenset()
    return run_system(
        SystemConfig(method=method, faults=faults, **params), n_frames=n_frames
    )


# ---------------------------------------------------------------------------
# Table III selected bugs
# ---------------------------------------------------------------------------
class TestBugHw2:
    """engine_signature not initialized — a VMux-only false alarm."""

    def test_vmux_detects(self):
        res = run_with("vmux", "hw.2", n_frames=1)
        assert res.detected
        assert res.hung or res.frames_drawn == 0

    def test_resim_cannot_introduce_it(self):
        res = run_with("resim", "hw.2", n_frames=1)
        assert not res.detected


class TestBugDpr4:
    """IcapCTRL point-to-point mode on a shared PLB."""

    def test_resim_detects(self):
        res = run_with("resim", "dpr.4", n_frames=1)
        assert res.detected
        assert res.monitors["plb_protocol_errors"] > 0

    def test_vmux_misses(self):
        res = run_with("vmux", "dpr.4", n_frames=1)
        assert not res.detected


class TestBugDpr5:
    """Driver programs BSIZE in words instead of bytes."""

    def test_resim_detects(self):
        res = run_with("resim", "dpr.5", n_frames=1)
        assert res.detected

    def test_vmux_misses(self):
        res = run_with("vmux", "dpr.5", n_frames=1)
        assert not res.detected


class TestBugDpr6b:
    """Reset issued before the (slow-clock) transfer completes."""

    def test_resim_detects(self):
        res = run_with("resim", "dpr.6b", n_frames=1)
        assert res.detected
        # the lost pulses are visible evidence
        assert (
            res.monitors["lost_reset_pulses"] > 0
            or res.monitors["lost_start_pulses"] > 0
            or res.hung
        )

    def test_vmux_misses(self):
        res = run_with("vmux", "dpr.6b", n_frames=1)
        assert not res.detected

    def test_fast_config_clock_masks_the_bug(self):
        """The original design's faster configuration clock hid it: with
        cfg as fast as the driver's assumption the delay is sufficient."""
        res = run_with("resim", "dpr.6b", n_frames=1, cfg_mhz=100.0)
        assert not res.detected


# ---------------------------------------------------------------------------
# Remaining DPR bugs
# ---------------------------------------------------------------------------
class TestBugDpr1:
    """Isolation not armed before reconfiguration."""

    def test_resim_detects_x_leak(self):
        res = run_with("resim", "dpr.1", n_frames=1)
        assert res.detected
        assert res.monitors["isolation_x_leaks"] > 0
        assert res.monitors["intc_x_violations"] > 0

    def test_vmux_misses(self):
        res = run_with("vmux", "dpr.1", n_frames=1)
        assert not res.detected


class TestBugDpr2:
    """DCR registers left inside the reconfigurable region."""

    def test_resim_detects_chain_break(self):
        res = run_with("resim", "dpr.2", n_frames=1)
        assert res.detected
        assert res.monitors["dcr_chain_breaks"] > 0

    def test_vmux_misses(self):
        res = run_with("vmux", "dpr.2", n_frames=1)
        assert not res.detected


class TestBugDpr3:
    """Newly configured engine started without reset."""

    def test_resim_detects_corrupt_frame(self):
        res = run_with("resim", "dpr.3", n_frames=1)
        assert res.detected
        assert any(not c.vec_ok for c in res.checks) or res.hung

    def test_vmux_misses(self):
        """Virtual multiplexing swaps are ideal: no dirty state exists."""
        res = run_with("vmux", "dpr.3", n_frames=1)
        assert not res.detected


# ---------------------------------------------------------------------------
# Software and static bugs: detected by BOTH methods
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fault", ["sw.1", "hw.s1", "hw.s3"])
@pytest.mark.parametrize("method", ["vmux", "resim"])
def test_data_corrupting_bugs_detected_by_both(method, fault):
    res = run_with(method, fault, n_frames=2)
    assert res.detected
    assert res.data_mismatches


@pytest.mark.parametrize("method", ["vmux", "resim"])
def test_hw_s2_hangs_under_both(method):
    res = run_with(method, "hw.s2", n_frames=1)
    assert res.detected
    assert res.hung or res.frames_drawn == 0


@pytest.mark.parametrize("method", ["vmux", "resim"])
def test_sw2_missing_ack_detected_by_both(method):
    res = run_with(method, "sw.2", n_frames=2)
    assert res.detected


def test_sw1_swapped_buffers_inverts_vectors():
    res = run_with("resim", "sw.1", n_frames=2)
    # frame 0 matches prev==curr, so the swap is benign there; frame 1
    # must mismatch on vectors
    bad = [c for c in res.checks if not c.vec_ok]
    assert bad and bad[0].frame >= 1
