"""Tests for the command-line front end."""

import pytest

from repro.cli import main


def test_scenarios_command(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "tiny" in out and "paper" in out


def test_run_clean_exits_zero(capsys):
    code = main(["run", "--scenario", "tiny", "--frames", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out


def test_run_with_fault_exits_nonzero(capsys):
    code = main(["run", "--scenario", "tiny", "--frames", "1",
                 "--fault", "dpr.4"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out


def test_bugs_list(capsys):
    assert main(["bugs"]) == 0
    out = capsys.readouterr().out
    assert "dpr.6b" in out and "hw.2" in out


def test_bugs_inject(capsys):
    code = main(["bugs", "dpr.4", "--scenario", "tiny", "--frames", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[vmux ] missed" in out
    assert "[resim] DETECTED" in out


def test_bugs_unknown_key(capsys):
    assert main(["bugs", "bogus"]) == 2


def test_profile_command(capsys):
    code = main(["profile", "--scenario", "tiny"])
    out = capsys.readouterr().out
    assert code == 0
    assert "CensusImg Engine" in out and "Overall" in out


def test_coverage_command(capsys):
    code = main(["coverage", "--scenario", "tiny", "--frames", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "DPR coverage:" in out


def test_timeline_command(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "Week" in out and "resim" in out


def test_soak_single_transient(capsys):
    code = main(["soak", "--frames", "2", "--seed", "7",
                 "--method", "resim", "--transient", "dma_stall",
                 "--check"])
    out = capsys.readouterr().out
    assert code == 0
    assert "dma_stall" in out and "outcomes:" in out


def test_soak_json_is_canonical(capsys):
    import json

    args = ["soak", "--frames", "2", "--seed", "7", "--method", "resim",
            "--transient", "payload_bitflip", "--json"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-identical: the replay guarantee
    assert json.loads(first)["ok"] is True


def test_soak_unknown_transient(capsys):
    assert main(["soak", "--transient", "bogus"]) == 2


def test_campaign_command(capsys):
    code = main(["campaign", "--bug", "dpr.1", "--frames", "1",
                 "--no-baseline", "--check"])
    out = capsys.readouterr().out
    assert code == 0
    assert "dpr.1" in out and "ONLY ReSim" in out


def test_campaign_json_identical_across_jobs(capsys):
    args = ["campaign", "--bug", "dpr.1", "--frames", "1",
            "--no-baseline", "--json"]
    assert main(args + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel  # the --jobs determinism guarantee


def test_campaign_unknown_bug(capsys):
    assert main(["campaign", "--bug", "bogus"]) == 2


def test_bench_system_check(capsys):
    code = main(["bench", "--system", "--frames", "1", "--check"])
    out = capsys.readouterr().out
    assert code == 0
    assert "warm cache" in out and "cache hits" in out


def test_trace_command_writes_chrome_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    code = main(["trace", "--scenario", "tiny", "--method", "resim",
                 "--frames", "1", "-o", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert str(out_path) in out
    doc = json.loads(out_path.read_text())
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"kernel", "bus", "reconfig", "firmware"} <= cats


def test_trace_category_filter(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    code = main(["trace", "--scenario", "tiny", "--frames", "1",
                 "--categories", "firmware,reconfig", "-o", str(out_path)])
    capsys.readouterr()
    assert code == 0
    doc = json.loads(out_path.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] != "M"}
    assert cats <= {"firmware", "reconfig"}
    assert "bus" not in cats


def test_method_override(capsys):
    code = main(["run", "--scenario", "tiny", "--method", "vmux",
                 "--frames", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[vmux]" in out


@pytest.mark.fuzz
def test_fuzz_clean_campaign_closes(capsys):
    code = main(["fuzz", "--budget", "8", "--wave", "4", "--check"])
    out = capsys.readouterr().out
    assert code == 0
    assert "coverage CLOSED" in out
    assert "13/13" in out


@pytest.mark.fuzz
def test_fuzz_json_identical_across_jobs(capsys):
    args = ["fuzz", "--budget", "4", "--wave", "4", "--json"]
    assert main(args + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel  # the --jobs determinism guarantee


@pytest.mark.fuzz
def test_fuzz_injected_divergence_shrinks_and_replays(tmp_path, capsys):
    repro_path = tmp_path / "repro.json"
    code = main(["fuzz", "--budget", "1", "--wave", "1",
                 "--inject-divergence", "sw.1",
                 "--repro", str(repro_path), "--check"])
    out = capsys.readouterr().out
    assert code == 1  # a real divergence fails --check
    assert "REAL divergence" in out
    assert "shrunk to 2 frame(s)" in out
    assert repro_path.exists()

    code = main(["fuzz", "--replay", str(repro_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "REPRODUCED" in out


@pytest.mark.fuzz
def test_fuzz_unknown_divergence_key(capsys):
    assert main(["fuzz", "--inject-divergence", "bogus"]) == 2


@pytest.mark.fuzz
def test_fuzz_replay_missing_file():
    with pytest.raises(FileNotFoundError):
        main(["fuzz", "--replay", "/nonexistent/repro.json"])
