"""Direct tests for the externalized engine register block."""

import pytest

from repro.engines import EngineRegs
from repro.engines.registers import CTRL_RESET, CTRL_START


def test_register_map_layout():
    regs = EngineRegs("r", base=0x10)
    assert regs.addr_of("CTRL") == 0x10
    assert regs.addr_of("STATUS") == 0x11
    assert regs.addr_of("SRC1") == 0x12
    assert regs.addr_of("SRC2") == 0x13
    assert regs.addr_of("DST") == 0x14
    assert regs.addr_of("WIDTH") == 0x15
    assert regs.addr_of("HEIGHT") == 0x16
    assert regs.addr_of("RADIUS") == 0x17


def test_radius_default():
    regs = EngineRegs("r", base=0)
    assert regs.peek("RADIUS") == 2


def test_ctrl_listeners_fire_in_order():
    regs = EngineRegs("r", base=0)
    events = []
    regs.on_start(lambda: events.append("start"))
    regs.on_reset(lambda: events.append("reset"))
    regs.dcr_write(regs.addr_of("CTRL"), CTRL_START | CTRL_RESET)
    # reset is dispatched before start: a combined pulse must not start
    # a dirty engine
    assert events == ["reset", "start"]


def test_ctrl_is_write_pulse():
    regs = EngineRegs("r", base=0)
    regs.dcr_write(regs.addr_of("CTRL"), CTRL_START)
    assert regs.dcr_read(regs.addr_of("CTRL")) == 0


def test_status_helpers():
    regs = EngineRegs("r", base=0)
    regs.set_status(done=True, busy=False, error=True)
    assert regs.status_done and regs.status_error and not regs.status_busy
    assert regs.dcr_read(regs.addr_of("STATUS")) == 0b101
    regs.set_status(done=False, busy=True, error=False)
    assert regs.status_busy and not regs.status_done


def test_multiple_listeners_all_called():
    regs = EngineRegs("r", base=0)
    hits = []
    regs.on_start(lambda: hits.append(1))
    regs.on_start(lambda: hits.append(2))
    regs.dcr_write(regs.addr_of("CTRL"), CTRL_START)
    assert hits == [1, 2]
