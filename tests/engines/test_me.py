"""Tests for the Matching Engine RTL model."""

import numpy as np
import pytest

from repro.engines import CensusImageEngine, MatchingEngine
from repro.video import census_transform, match_features, unpack_vector_bytes

from .conftest import (
    FEAT2_BASE,
    FEAT_BASE,
    FRAME_BASE,
    VEC_BASE,
    EngineBench,
    load_features,
    load_frame,
)


def run_me(scene, reset=True, radius=2):
    bench = EngineBench(MatchingEngine)
    f0, f1 = scene.frame(0), scene.frame(1)
    feat_prev = load_features(bench.mem, FEAT_BASE, f0)
    feat_curr = load_features(bench.mem, FEAT2_BASE, f1)
    bench.regs.poke("RADIUS", radius)
    bench.program(src1=FEAT2_BASE, src2=FEAT_BASE, dst=VEC_BASE)
    done = bench.run_frame(reset=reset, timeout_ms=160)
    words = bench.mem.dump_words(VEC_BASE, bench.width * bench.height // 4)
    dx, dy, valid = unpack_vector_bytes(
        words, (bench.height, bench.width), radius
    )
    return bench, feat_prev, feat_curr, (dx, dy, valid), done


def test_me_matches_golden_model(scene):
    bench, fprev, fcurr, (dx, dy, valid), done = run_me(scene)
    assert done
    gdx, gdy, gvalid = match_features(fprev, fcurr, radius=2)
    assert np.array_equal(valid, gvalid)
    assert np.array_equal(dx, gdx)
    assert np.array_equal(dy, gdy)
    assert not bench.regs.status_error


def test_me_radius_one(scene):
    bench, fprev, fcurr, (dx, dy, valid), done = run_me(scene, radius=1)
    assert done
    gdx, gdy, gvalid = match_features(fprev, fcurr, radius=1)
    assert np.array_equal(dx, gdx)
    assert np.array_equal(dy, gdy)
    assert np.array_equal(valid, gvalid)


def test_me_takes_longer_than_cie_in_simulated_time(scene):
    """Table II shape: ME simulated time > CIE simulated time."""
    me_bench, *_ , me_done = run_me(scene)
    assert me_done

    cie_bench = EngineBench(CensusImageEngine)
    load_frame(cie_bench.mem, FRAME_BASE, scene.frame(0))
    cie_bench.program(FRAME_BASE, 0, FEAT_BASE)
    assert cie_bench.run_frame()
    assert me_bench.sim.time > cie_bench.sim.time


def test_cie_costs_more_kernel_events_per_simulated_ms(scene):
    """Table II shape: CIE is more expensive to simulate per unit time."""
    me_bench, *_, me_done = run_me(scene)
    cie_bench = EngineBench(CensusImageEngine)
    load_frame(cie_bench.mem, FRAME_BASE, scene.frame(0))
    cie_bench.program(FRAME_BASE, 0, FEAT_BASE)
    assert cie_bench.run_frame()
    cie_rate = cie_bench.sim.stats.events / cie_bench.sim.time
    me_rate = me_bench.sim.stats.events / me_bench.sim.time
    assert cie_rate > me_rate


def test_me_unreset_engine_produces_wrong_vectors(scene):
    bench, fprev, fcurr, (dx, dy, valid), done = run_me(scene, reset=False)
    assert done
    assert bench.regs.status_error
    gdx, gdy, gvalid = match_features(fprev, fcurr, radius=2)
    assert not np.array_equal(dx, gdx)


def test_me_invalid_radius_rejected(scene):
    bench = EngineBench(MatchingEngine)
    load_features(bench.mem, FEAT_BASE, scene.frame(0))
    load_features(bench.mem, FEAT2_BASE, scene.frame(1))
    bench.regs.poke("RADIUS", 9)
    bench.program(FEAT2_BASE, FEAT_BASE, VEC_BASE)
    from repro.kernel import ProcessError

    with pytest.raises(ProcessError):
        bench.run_frame(timeout_ms=5)


def test_me_border_rows_invalid(scene):
    bench, fprev, fcurr, (dx, dy, valid), done = run_me(scene)
    assert done
    assert not valid[:3, :].any()
    assert not valid[-3:, :].any()
    assert not valid[:, :3].any()
    assert not valid[:, -3:].any()


def test_me_recovers_object_motion():
    from repro.video import FrameSequence, SceneConfig, motion_field_error

    single = FrameSequence(
        SceneConfig(width=64, height=48, n_objects=1, max_speed=2, seed=42)
    )
    bench = EngineBench(MatchingEngine, width=64, height=48)
    fprev = load_features(bench.mem, FEAT_BASE, single.frame(0))
    fcurr = load_features(bench.mem, FEAT2_BASE, single.frame(1))
    bench.program(src1=FEAT2_BASE, src2=FEAT_BASE, dst=VEC_BASE)
    assert bench.run_frame(timeout_ms=240)
    words = bench.mem.dump_words(VEC_BASE, 64 * 48 // 4)
    dx, dy, valid = unpack_vector_bytes(words, (48, 64), 2)
    (expected,) = single.true_motion(0)
    mask = single.object_mask(1, margin=3)
    err = motion_field_error(dx, dy, valid, mask, expected)
    assert err < 0.4, f"motion error {err:.2%} for expected {expected}"
