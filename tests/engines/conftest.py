"""Shared harness for engine-level tests: a minimal RR socket."""

import numpy as np
import pytest

from repro.bus import DcrBus, PlbBus, PlbMemory
from repro.engines import CensusImageEngine, EngineRegs, MatchingEngine
from repro.kernel import Clock, MHz, Module, Simulator
from repro.video import FrameSequence, SceneConfig, census_transform, pack_pixels

FRAME_BASE = 0x0000_0000
FEAT_BASE = 0x0002_0000
FEAT2_BASE = 0x0004_0000
VEC_BASE = 0x0006_0000
MEM_SIZE = 0x0008_0000


class EngineBench:
    """One engine wired straight into a bus + memory + register file."""

    def __init__(self, engine_cls, width=64, height=32):
        self.sim = Simulator()
        self.top = Module("top")
        self.clk = Clock("clk", MHz(100), parent=self.top)
        self.bus = PlbBus("plb", self.clk, parent=self.top)
        self.mem = PlbMemory("mem", MEM_SIZE, parent=self.top)
        self.bus.attach_slave(self.mem, base=0, size=MEM_SIZE)
        self.dcr = DcrBus("dcr", self.clk, parent=self.top)
        self.regs = EngineRegs("eregs", base=0x40, parent=self.top)
        self.dcr.attach(self.regs)
        self.engine = engine_cls(clock=self.clk, parent=self.top)
        self.engine.install(self.bus.attach_master("rr"), self.regs)
        self.regs.on_start(self.engine.trigger_start)
        self.regs.on_reset(self.engine.reset)
        self.width, self.height = width, height
        self.regs.poke("WIDTH", width)
        self.regs.poke("HEIGHT", height)
        self.sim.add_module(self.top)

    def program(self, src1, src2, dst):
        self.regs.poke("SRC1", src1)
        self.regs.poke("SRC2", src2)
        self.regs.poke("DST", dst)

    def run_frame(self, reset=True, swap_in=True, timeout_ms=80):
        """Swap in, optionally reset, start, and run until done."""
        if swap_in:
            self.engine.swap_in()

        def kicker():
            if reset:
                self.engine.reset()
            self.engine.trigger_start()
            yield from ()

        self.sim.fork(kicker())
        deadline = self.sim.time + timeout_ms * 1_000_000_000 // 1000
        while self.sim.time < deadline:
            self.sim.run(until=min(self.sim.time + 200_000, deadline))
            if self.regs.status_done:
                return True
        return False


@pytest.fixture
def scene():
    return FrameSequence(SceneConfig(width=64, height=32, seed=9))


def load_frame(mem, base, frame):
    mem.load_words(base, pack_pixels(frame.ravel()))


def load_features(mem, base, frame):
    feat = census_transform(frame)
    mem.load_words(base, pack_pixels(feat.ravel()))
    return feat
