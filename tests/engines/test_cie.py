"""Tests for the Census Image Engine RTL model."""

import numpy as np
import pytest

from repro.engines import CensusImageEngine
from repro.video import census_transform, unpack_pixels

from .conftest import FEAT_BASE, FRAME_BASE, EngineBench, load_frame


def run_cie(scene, reset=True):
    bench = EngineBench(CensusImageEngine)
    frame = scene.frame(0)
    load_frame(bench.mem, FRAME_BASE, frame)
    bench.program(FRAME_BASE, 0, FEAT_BASE)
    done = bench.run_frame(reset=reset)
    words = bench.mem.dump_words(FEAT_BASE, bench.width * bench.height // 4)
    feat = unpack_pixels(words).reshape(bench.height, bench.width)
    return bench, frame, feat, done


def test_cie_matches_golden_model(scene):
    bench, frame, feat, done = run_cie(scene)
    assert done
    assert np.array_equal(feat, census_transform(frame))
    assert bench.engine.frames_processed == 1
    assert not bench.regs.status_error


def test_cie_simulated_time_tracks_throughput(scene):
    bench, frame, feat, done = run_cie(scene)
    assert done
    # >= compute cycles alone (1 px/cycle), <= 4x for bus overheads
    px = bench.width * bench.height
    min_time = px * bench.clk.period
    assert min_time <= bench.sim.time <= 4 * min_time


def test_cie_unreset_engine_corrupts_output_and_flags_error(scene):
    bench, frame, feat, done = run_cie(scene, reset=False)
    assert done
    assert bench.regs.status_error
    assert bench.engine.frames_corrupted == 1
    assert not np.array_equal(feat, census_transform(frame))


def test_cie_start_while_absent_is_ignored(scene):
    bench = EngineBench(CensusImageEngine)
    load_frame(bench.mem, FRAME_BASE, scene.frame(0))
    bench.program(FRAME_BASE, 0, FEAT_BASE)
    done = bench.run_frame(swap_in=False, reset=False, timeout_ms=2)
    assert not done
    assert bench.engine.frames_processed == 0


def test_cie_reset_while_absent_is_lost(scene):
    """The bug.dpr.6b mechanism: reset pulses vanish without an engine."""
    bench = EngineBench(CensusImageEngine)
    bench.engine.reset()  # not present yet
    assert not bench.engine.is_reset
    bench.engine.swap_in()
    bench.engine.reset()
    assert bench.engine.is_reset


def test_cie_swap_out_mid_frame_aborts(scene):
    bench = EngineBench(CensusImageEngine)
    load_frame(bench.mem, FRAME_BASE, scene.frame(0))
    bench.program(FRAME_BASE, 0, FEAT_BASE)
    bench.engine.swap_in()

    def kicker():
        bench.engine.reset()
        bench.engine.trigger_start()
        yield from ()

    bench.sim.fork(kicker())
    bench.sim.run(until=20_000)  # let a few rows process
    bench.engine.swap_out()
    bench.sim.run(until=5_000_000)
    assert bench.engine.aborted_runs == 1
    assert bench.engine.frames_processed == 0
    assert not bench.regs.status_done


def test_cie_swap_in_clears_reset_state(scene):
    bench = EngineBench(CensusImageEngine)
    bench.engine.swap_in()
    bench.engine.reset()
    assert bench.engine.is_reset
    bench.engine.swap_out()
    bench.engine.swap_in()
    assert not bench.engine.is_reset  # fresh configuration is dirty


def test_cie_generates_io_and_datapath_activity(scene):
    bench, frame, feat, done = run_cie(scene)
    assert bench.engine.io_activity.change_count > 2 * bench.height - 4
    assert bench.engine.dp_activity.change_count > bench.width * (bench.height - 2)


def test_cie_back_to_back_frames(scene):
    bench = EngineBench(CensusImageEngine)
    for t in range(2):
        frame = scene.frame(t)
        load_frame(bench.mem, FRAME_BASE, frame)
        bench.program(FRAME_BASE, 0, FEAT_BASE)
        done = bench.run_frame(reset=True, swap_in=(t == 0))
        assert done
        words = bench.mem.dump_words(FEAT_BASE, bench.width * bench.height // 4)
        feat = unpack_pixels(words).reshape(bench.height, bench.width)
        assert np.array_equal(feat, census_transform(frame))
    assert bench.engine.frames_processed == 2
