"""Every shipped example must run to completion (no bit-rot)."""

import os
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"

FAST_EXAMPLES = [
    "quickstart.py",
    "state_migration.py",
]

SLOW_EXAMPLES = [
    "optical_flow_demo.py",
    "bug_hunt.py",
    "iss_firmware_demo.py",
    "waveform_debug.py",
    "custom_error_injection.py",
]


def run_example(name: str, args=(), cwd=None) -> subprocess.CompletedProcess:
    # Examples import `repro`; prepend <repo>/src to PYTHONPATH (merged
    # into the inherited environment, not replacing it) so they run
    # from any cwd without `pip install -e .`.
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=cwd,
        env=env,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, tmp_path):
    result = run_example(name, cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_example_runs_from_temp_cwd_with_scrubbed_pythonpath(
    tmp_path, monkeypatch
):
    """Regression: examples must not depend on the caller's PYTHONPATH.

    The seed ran example subprocesses with ``cwd=tmp_path`` and no env,
    so ``import repro`` only worked if the package happened to be
    installed.  run_example must build an environment of its own with
    ``<repo>/src`` prepended (and the inherited value preserved).
    """
    monkeypatch.setenv("PYTHONPATH", str(tmp_path / "unrelated"))
    result = run_example("quickstart.py", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout

    monkeypatch.delenv("PYTHONPATH")
    result = run_example("quickstart.py", cwd=tmp_path)
    assert result.returncode == 0, result.stderr


def test_optical_flow_demo_passes(tmp_path):
    result = run_example("optical_flow_demo.py", ["1"], cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "PASS" in result.stdout


def test_bug_hunt_lists_and_hunts(tmp_path):
    listing = run_example("bug_hunt.py", ["--list"], cwd=tmp_path)
    assert listing.returncode == 0
    assert "dpr.6b" in listing.stdout
    hunt = run_example("bug_hunt.py", ["dpr.4"], cwd=tmp_path)
    assert hunt.returncode == 0, hunt.stderr
    assert "DETECTED" in hunt.stdout and "missed" in hunt.stdout


def test_bug_hunt_unknown_key(tmp_path):
    result = run_example("bug_hunt.py", ["bogus"], cwd=tmp_path)
    assert result.returncode == 2


def test_iss_firmware_demo(tmp_path):
    result = run_example("iss_firmware_demo.py", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "MATCH" in result.stdout


def test_waveform_debug_writes_vcd(tmp_path):
    out = tmp_path / "dbg.vcd"
    result = run_example("waveform_debug.py", [str(out)], cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert out.exists()
    assert "first X in the trace" in result.stdout


def test_custom_error_injection(tmp_path):
    result = run_example("custom_error_injection.py", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "stuck-high" in result.stdout
