"""The paper's week-3 bring-up milestones as tests.

"...the designer's workload involved re-integrating legacy components
and simulating sanity checks such as a 'hello world' program and a
'camera to VGA display' application." (§V-A)
"""

import numpy as np
import pytest

from repro.cpu import assemble
from repro.cpu.firmware import attach_iss
from repro.system import AutoVisionSystem, SystemConfig


def make_system():
    return AutoVisionSystem(
        SystemConfig(width=48, height=32, simb_payload_words=128)
    )


def test_hello_world_on_the_iss():
    """The classic first program, through the real console service."""
    system = make_system()
    iss = attach_iss(system)
    source = "\n".join(
        [f"li r3, {ord(c)}\nli r0, 1\nsc" for c in "hello world"]
        + ["li r3, 0", "li r0, 0", "sc"]
    )
    iss.load(assemble(source))
    sim = system.build()
    iss.start()
    assert sim.run_until_event(iss.done, timeout=10_000_000)
    assert "".join(iss.console) == "hello world"
    assert iss.exit_code == 0


def test_camera_to_display_passthrough():
    """Camera VIP -> main memory -> display VIP, over the live PLB."""
    system = make_system()
    sim = system.build()
    mm = system.memory_map
    shape = (system.config.height, system.config.width)
    got = {}

    def flow():
        sent = yield from system.video_in.send_frame(0, mm.input[0])
        shown = yield from system.video_out.fetch_pixels(mm.input[0], shape)
        got["sent"], got["shown"] = sent, shown

    sim.fork(flow())
    sim.run(until=200_000_000)
    assert np.array_equal(got["sent"], got["shown"])
    assert system.video_out.corrupt_words == 0
    # the frame really crossed the bus twice
    frame_words = shape[0] * shape[1] // 4
    assert system.bus.total_beats >= 2 * frame_words


def test_display_flags_corrupt_words():
    """The display VIP counts X words it had to blank."""
    system = make_system()
    sim = system.build()
    shape = (system.config.height, system.config.width)
    frame_words = shape[0] * shape[1] // 4

    def flow():
        # read beyond mapped memory: decode errors return X
        yield from system.video_out.fetch_pixels(
            system.memory_map.size, shape
        )

    sim.fork(flow())
    sim.run(until=400_000_000)
    assert system.video_out.corrupt_words == frame_words
