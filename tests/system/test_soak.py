"""Longer soak runs: the pipeline stays correct over many frames."""

import pytest

from repro.system import SystemConfig
from repro.verif import run_system

from .conftest import small_config


def test_six_frame_soak_resim():
    res = run_system(small_config(), n_frames=6)
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 6
    assert all(c.ok for c in res.checks)
    # two reconfigurations per frame, all completed
    assert res.monitors == {k: 0 for k in res.monitors}


def test_six_frame_soak_vmux():
    res = run_system(small_config(method="vmux"), n_frames=6)
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 6


def test_ping_pong_buffers_never_cross_frames():
    """Frame N's checks depend on frames N-1 and N: a buffer-recycling
    bug would corrupt alternating frames, so every frame must pass."""
    res = run_system(small_config(), n_frames=5)
    assert [c.frame for c in res.checks] == [0, 1, 2, 3, 4]
    for c in res.checks:
        assert c.feat_ok and c.vec_ok and c.overlay_ok, f"frame {c.frame}"


def test_simulated_time_scales_linearly_with_frames():
    one = run_system(small_config(), n_frames=1)
    three = run_system(small_config(), n_frames=3)
    ratio = three.sim_time_ps / one.sim_time_ps
    assert 2.5 < ratio < 3.5
