"""Shared fixtures for system-level tests.

System runs are the slowest tests in the suite, so the default test
geometry is small (48x32) and clean-run results are cached per session.
"""

import pytest

from repro.system import SystemConfig
from repro.verif import run_system

SMALL = dict(width=48, height=32, simb_payload_words=128)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return SystemConfig(**params)


@pytest.fixture(scope="session")
def clean_resim_run():
    return run_system(small_config(method="resim"), n_frames=2)


@pytest.fixture(scope="session")
def clean_vmux_run():
    return run_system(small_config(method="vmux"), n_frames=2)
