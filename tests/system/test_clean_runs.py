"""End-to-end behaviour of the fault-free demonstrator."""

import pytest

from repro.verif import run_system

from .conftest import small_config


def test_clean_resim_run_passes(clean_resim_run):
    res = clean_resim_run
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 2
    assert all(c.ok for c in res.checks)


def test_clean_vmux_run_passes(clean_vmux_run):
    res = clean_vmux_run
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 2


def test_clean_resim_monitors_all_zero(clean_resim_run):
    for name, count in clean_resim_run.monitors.items():
        assert count == 0, f"monitor {name} = {count} on a clean run"


def test_resim_and_vmux_produce_identical_frame_data():
    """Functionally, both simulation methods compute the same frames."""
    resim = run_system(small_config(method="resim"), n_frames=1)
    vmux = run_system(small_config(method="vmux"), n_frames=1)
    assert not resim.detected and not vmux.detected
    assert len(resim.checks) == len(vmux.checks) == 1
    assert resim.checks[0].ok and vmux.checks[0].ok


def test_resim_run_takes_longer_simulated_time_than_vmux():
    """ReSim models the real (non-zero) reconfiguration delay."""
    resim = run_system(small_config(method="resim"), n_frames=1)
    vmux = run_system(small_config(method="vmux"), n_frames=1)
    assert resim.sim_time_ps > vmux.sim_time_ps


def test_backdoor_video_mode_matches_bus_mode():
    bus_mode = run_system(small_config(), n_frames=1)
    backdoor = run_system(small_config(video_backdoor=True), n_frames=1)
    assert not bus_mode.detected and not backdoor.detected
    # backdoor mode removes camera bus traffic, so it is faster
    assert backdoor.sim_time_ps < bus_mode.sim_time_ps


def test_multi_frame_run():
    res = run_system(small_config(), n_frames=4)
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 4
    assert [c.frame for c in res.checks] == [0, 1, 2, 3]


def test_invalid_method_rejected():
    with pytest.raises(ValueError):
        small_config(method="chipscope")


def test_unknown_fault_key_rejected():
    with pytest.raises(KeyError):
        run_system(small_config(faults=frozenset({"dpr.99"})), n_frames=1)
