"""Structural tests against the paper's Figures 1-4.

Fig. 1 — hardware architecture (bus topology, DCR chain, interrupts);
Fig. 2 — pipelined processing flow ordering;
Fig. 3 — Virtual Multiplexing testbench structure;
Fig. 4 — ReSim testbench structure (user design untouched, artifacts
simulation-only).
"""

import pytest

from repro.reconfig import ExtendedPortal, IcapArtifact
from repro.system import AutoVisionSoftware, AutoVisionSystem, SystemConfig
from repro.system.autovision import NullConfigPort
from repro.verif import run_system

from .conftest import small_config


def test_fig1_plb_masters_and_slaves():
    system = AutoVisionSystem(small_config())
    master_names = {m.name for m in system.bus.masters}
    assert {"rr0", "video_in", "video_out", "cpu", "icapctrl_dma"} <= master_names
    # main memory is the single PLB slave
    assert len(system.bus.slaves) == 1
    assert system.bus.slaves[0][2] is system.memory


def test_fig1_dcr_chain_contains_static_register_blocks():
    system = AutoVisionSystem(small_config())
    order = system.dcr.chain_order()
    assert "engine_regs" in order
    assert "intc" in order
    assert "icapctrl" in order
    # the engines themselves are NOT on the chain (registers moved out)
    assert "cie" not in order and "me" not in order


def test_fig1_interrupt_sources():
    system = AutoVisionSystem(small_config())
    assert system.intc.index_of("engine_done") == 0
    assert system.intc.index_of("reconfig_done") == 1


def test_fig1_engine_outputs_reach_intc_through_isolation():
    system = AutoVisionSystem(small_config())
    # INTC source 0 is the isolation module's gated output, not the raw
    # slot output: the isolation module is in the interrupt path
    assert system.intc._sources[0] is system.isolation.out_done
    assert system.isolation.slot is system.slot


def test_fig3_vmux_structure():
    """VMux adds a signature register; ICAP artifacts are absent."""
    system = AutoVisionSystem(small_config(method="vmux"))
    assert system.vmux is not None
    assert "vmux_sig" in system.dcr.chain_order()
    assert system.artifacts is None
    assert isinstance(system.icap, NullConfigPort)
    # the IcapCTRL is still instantiated (it is part of the design)
    assert system.icapctrl is not None


def test_fig4_resim_structure():
    """ReSim adds only simulation-only artifacts; no signature register."""
    system = AutoVisionSystem(small_config(method="resim"))
    assert system.vmux is None
    assert "vmux_sig" not in system.dcr.chain_order()
    assert isinstance(system.icap, IcapArtifact)
    assert isinstance(system.artifacts.portal("video_rr"), ExtendedPortal)
    # both engines sit in the slot in parallel, CIE initially configured
    assert set(system.slot.engines) == {
        system.cie.ENGINE_ID,
        system.me.ENGINE_ID,
    }
    assert system.slot.active is system.cie


def test_resim_and_vmux_share_the_same_user_design():
    """ReSim does not change the user design (§IV-B): both methods build
    the identical DUT module set, modulo the simulation-only layer."""
    resim = AutoVisionSystem(small_config(method="resim"))
    vmux = AutoVisionSystem(small_config(method="vmux"))

    def dut_modules(system):
        simulation_only = {"icap_artifact", "portal_video_rr",
                           "injector_video_rr", "vmux", "vmux_sig",
                           "null_icap"}
        return sorted(
            m.name for m in system.iter_tree() if m.name not in simulation_only
        )

    assert dut_modules(resim) == dut_modules(vmux)


def test_memory_map_buffers_do_not_overlap():
    system = AutoVisionSystem(small_config())
    mm = system.memory_map
    ranges = []
    for base in mm.input + mm.feat + mm.vec + mm.out + [mm.bs_cie, mm.bs_me]:
        ranges.append(base)
    spans = sorted(ranges)
    assert len(set(spans)) == len(spans)
    assert mm.size <= 0x100_0000
    # bitstreams were loaded at build time (resim)
    assert int(system.memory.dump_words(mm.bs_me, 1)[0]) == 0xAA995566


def test_fig2_pipelined_flow_ordering(clean_resim_run):
    """Per frame: cie -> dpr -> me -> dpr; drawing overlaps frame N+1."""
    # reconstruct from the software phase log of a fresh run
    from repro.system import AutoVisionSoftware, SystemConfig
    from repro.system.autovision import AutoVisionSystem

    config = small_config()
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    sim.fork(software.run(2), "main", owner=software)
    sim.run_until_event(software.run_complete, timeout=2_000_000_000)
    assert software.finished
    phases = [p[0] for p in software.phase_log]
    assert phases[:5] == ["video_in", "cie", "dpr", "me", "dpr"]
    # the draw of frame 0 completes after frame 1's processing started
    draw0_start = next(p[1] for p in software.phase_log if p[0] == "isr_draw")
    cie_phases = [p for p in software.phase_log if p[0] == "cie"]
    assert len(cie_phases) == 2
    assert draw0_start < cie_phases[1][2], "drawing did not overlap frame 1"


def test_fig2_two_reconfigurations_per_frame(clean_resim_run):
    config = small_config()
    system = AutoVisionSystem(config)
    software = AutoVisionSoftware(system)
    sim = system.build()
    sim.fork(software.run(3), "main", owner=software)
    sim.run_until_event(software.run_complete, timeout=4_000_000_000)
    assert software.finished
    portal = system.artifacts.portal("video_rr")
    assert portal.reconfigurations == 2 * 3
