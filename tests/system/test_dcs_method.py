"""Tests for the Dynamic-Circuit-Switch-style simulation method."""

import pytest

from repro.system import AutoVisionSystem, SystemConfig
from repro.system.autovision import NullConfigPort
from repro.verif import run_system

from .conftest import small_config


def test_clean_dcs_run_passes():
    res = run_system(small_config(method="dcs"), n_frames=2)
    assert not res.detected, res.anomalies
    assert res.frames_drawn == 2


def test_dcs_structure():
    """DCS adds a signature register + injector; no ReSim artifacts."""
    system = AutoVisionSystem(small_config(method="dcs"))
    assert system.dcs is not None
    assert system.vmux is None
    assert system.artifacts is None
    assert isinstance(system.icap, NullConfigPort)
    assert "dcs_sig" in system.dcr.chain_order()


def test_dcs_swap_leaves_engine_dirty():
    """Unlike VMux, DCS models module activation: a swapped-in module
    has undefined state until reset (so dpr.3 is observable)."""
    system = AutoVisionSystem(small_config(method="dcs"))
    sim = system.build()

    def driver():
        yield from system.dcr.write(
            system.dcs.signature.addr_of("SIG"), system.me.ENGINE_ID
        )

    sim.fork(driver())
    sim.run_for(50_000_000)
    assert system.slot.active is system.me
    assert not system.me.is_reset


def test_dcs_injects_during_constant_window():
    system = AutoVisionSystem(small_config(method="dcs"))
    sim = system.build()
    system.isolation.set_enabled(False)

    def driver():
        yield from system.dcr.write(
            system.dcs.signature.addr_of("SIG"), system.me.ENGINE_ID
        )

    sim.fork(driver())
    # run into the middle of the swap window
    sim.run_for(system.dcs.swap_delay_cycles * system.bus_clock.period // 2)
    assert system.slot.injecting
    assert system.slot.active is None
    sim.run_for(200_000_000)
    assert not system.slot.injecting
    assert system.isolation.x_leaks > 0  # isolation was off: X escaped


def test_dcs_detects_isolation_bug_but_not_bitstream_bugs():
    assert run_system(
        small_config(method="dcs", faults=frozenset({"dpr.1"})), n_frames=1
    ).detected
    for key in ("dpr.4", "dpr.5", "dpr.6b"):
        assert not run_system(
            small_config(method="dcs", faults=frozenset({key})), n_frames=1
        ).detected, key


def test_dcs_icapctrl_never_exercised():
    res = run_system(small_config(method="dcs"), n_frames=1)
    system = AutoVisionSystem(small_config(method="dcs"))
    assert system.icapctrl.transfers_completed == 0
