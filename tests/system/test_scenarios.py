"""Tests for named scenarios."""

import pytest

from repro.system import SCENARIOS, SystemConfig, scenario, scenario_names


def test_all_scenarios_are_valid_configs():
    for name in scenario_names():
        cfg = scenario(name)
        assert isinstance(cfg, SystemConfig)
        cfg.scene()  # geometry must be valid


def test_scenario_overrides():
    cfg = scenario("tiny", method="vmux", faults=frozenset({"dpr.4"}))
    assert cfg.method == "vmux"
    assert cfg.faults == frozenset({"dpr.4"})
    # the base is untouched
    assert SCENARIOS["tiny"].method == "resim"


def test_unknown_scenario():
    with pytest.raises(KeyError):
        scenario("nope")


def test_unknown_override_key_rejected():
    with pytest.raises(ValueError, match="unknown scenario override"):
        scenario("tiny", frame_width=640)  # typo for `width`


def test_unknown_override_error_names_the_culprits():
    with pytest.raises(ValueError) as exc:
        scenario("tiny", frame_width=640, metod="vmux")
    msg = str(exc.value)
    assert "frame_width" in msg and "metod" in msg
    assert "width" in msg  # the valid fields are listed


def test_paper_scenarios_match_the_paper():
    paper = scenario("paper")
    assert (paper.width, paper.height) == (320, 240)
    assert paper.simb_payload_words == 4096
    accurate = scenario("paper-bitstream-accurate")
    assert accurate.simb_payload_words == 129 * 1024


def test_original_clocking_is_fast():
    assert scenario("original-clocking").cfg_mhz == 100.0
    assert scenario("scaled").cfg_mhz == 50.0


def test_tiny_scenario_runs():
    from repro.verif import run_system

    res = run_system(scenario("tiny"), n_frames=1)
    assert not res.detected


def test_tiny_ft_scenario_runs_clean():
    """Fault tolerance must add zero anomalies to a fault-free run."""
    from repro.verif import run_system

    cfg = scenario("tiny-ft")
    assert cfg.fault_tolerance
    res = run_system(cfg, n_frames=1)
    assert not res.detected
    assert res.frames_dropped == 0
    assert res.recovery_log == []
