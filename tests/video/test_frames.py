"""Tests for synthetic frame generation."""

import numpy as np
import pytest

from repro.video import FrameSequence, SceneConfig


def test_frames_are_deterministic():
    a = FrameSequence(SceneConfig(seed=7))
    b = FrameSequence(SceneConfig(seed=7))
    assert np.array_equal(a.frame(3), b.frame(3))


def test_different_seeds_differ():
    a = FrameSequence(SceneConfig(seed=1))
    b = FrameSequence(SceneConfig(seed=2))
    assert not np.array_equal(a.frame(0), b.frame(0))


def test_frame_shape_and_dtype():
    seq = FrameSequence(SceneConfig(width=64, height=48))
    f = seq.frame(0)
    assert f.shape == (48, 64)
    assert f.dtype == np.uint8


def test_frame_pure_function_of_index():
    seq = FrameSequence()
    assert np.array_equal(seq.frame(5), seq.frame(5))


def test_consecutive_frames_differ_by_motion():
    seq = FrameSequence(SceneConfig(seed=3))
    assert not np.array_equal(seq.frame(0), seq.frame(1))


def test_background_static_outside_objects():
    seq = FrameSequence(SceneConfig(seed=3))
    f0, f1 = seq.frame(0), seq.frame(1)
    covered = seq.object_mask(0) | seq.object_mask(1)
    assert np.array_equal(f0[~covered], f1[~covered])


def test_object_motion_is_translation():
    """Object pixels in frame t+1 equal frame t pixels shifted by (vx,vy)."""
    cfg = SceneConfig(seed=11, n_objects=1, max_speed=2)
    seq = FrameSequence(cfg)
    obj = seq.objects[0]
    f0, f1 = seq.frame(0), seq.frame(1)
    # sample the interior of the object (avoid other-object overlap: n=1)
    for dy in range(obj.h):
        for dx in range(0, obj.w, 3):
            y0 = (obj.y + dy) % cfg.height
            x0 = (obj.x + dx) % cfg.width
            y1 = (obj.y + obj.vy + dy) % cfg.height
            x1 = (obj.x + obj.vx + dx) % cfg.width
            assert f1[y1, x1] == f0[y0, x0]


def test_object_mask_margin_shrinks_mask():
    seq = FrameSequence(SceneConfig(seed=5))
    full = seq.object_mask(0)
    eroded = seq.object_mask(0, margin=2)
    assert eroded.sum() < full.sum()
    assert not (eroded & ~full).any()


def test_true_motion_within_speed_limit():
    cfg = SceneConfig(max_speed=2)
    seq = FrameSequence(cfg)
    for vx, vy in seq.true_motion(0):
        assert abs(vx) <= 2 and abs(vy) <= 2


def test_config_validation():
    with pytest.raises(ValueError):
        SceneConfig(width=62)  # not multiple of 4
    with pytest.raises(ValueError):
        SceneConfig(width=8, height=8)
    with pytest.raises(ValueError):
        SceneConfig(max_speed=-1)


def test_frames_iterator():
    seq = FrameSequence()
    frames = list(seq.frames(3, start=2))
    assert len(frames) == 3
    assert np.array_equal(frames[0], seq.frame(2))
