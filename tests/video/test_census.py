"""Tests for the golden census transform."""

import numpy as np
import pytest

from repro.video import census_transform, hamming_distance
from repro.video.census import NEIGHBOUR_OFFSETS


def test_flat_image_gives_zero_signatures():
    frame = np.full((10, 12), 100, dtype=np.uint8)
    feat = census_transform(frame)
    assert (feat == 0).all()


def test_border_is_zero():
    rng = np.random.default_rng(0)
    frame = rng.integers(0, 256, (16, 16)).astype(np.uint8)
    feat = census_transform(frame)
    assert (feat[0, :] == 0).all() and (feat[-1, :] == 0).all()
    assert (feat[:, 0] == 0).all() and (feat[:, -1] == 0).all()


def test_single_bright_neighbour_sets_single_bit():
    for bit, (dy, dx) in enumerate(NEIGHBOUR_OFFSETS):
        frame = np.full((5, 5), 100, dtype=np.uint8)
        frame[2 + dy, 2 + dx] = 200
        feat = census_transform(frame)
        assert feat[2, 2] == (1 << bit)


def test_bright_centre_gives_zero():
    frame = np.full((5, 5), 100, dtype=np.uint8)
    frame[2, 2] = 255
    assert census_transform(frame)[2, 2] == 0


def test_dark_centre_gives_all_ones():
    frame = np.full((5, 5), 100, dtype=np.uint8)
    frame[2, 2] = 0
    assert census_transform(frame)[2, 2] == 0xFF


def test_equal_neighbour_is_not_greater():
    """Strictly-brighter comparison: ties give 0 bits."""
    frame = np.full((5, 5), 100, dtype=np.uint8)
    assert census_transform(frame)[2, 2] == 0


def test_illumination_invariance():
    """Census is invariant to adding a constant (no clipping)."""
    rng = np.random.default_rng(1)
    frame = rng.integers(50, 150, (20, 20)).astype(np.uint8)
    brighter = (frame + 40).astype(np.uint8)
    assert np.array_equal(census_transform(frame), census_transform(brighter))


def test_translation_commutes():
    """Shifting the image shifts the feature image (interior)."""
    rng = np.random.default_rng(2)
    frame = rng.integers(0, 256, (24, 24)).astype(np.uint8)
    shifted = np.roll(frame, 3, axis=1)
    f0 = census_transform(frame)
    f1 = census_transform(shifted)
    assert np.array_equal(f0[1:-1, 1:10], f1[1:-1, 4:13])


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        census_transform(np.zeros((2, 5), dtype=np.uint8))
    with pytest.raises(ValueError):
        census_transform(np.zeros(10, dtype=np.uint8))


def test_hamming_distance_basics():
    a = np.array([0b1010, 0xFF, 0], dtype=np.uint8)
    b = np.array([0b0101, 0x00, 0], dtype=np.uint8)
    assert hamming_distance(a, b).tolist() == [4, 8, 0]


def test_hamming_distance_symmetry_and_identity():
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, 100).astype(np.uint8)
    b = rng.integers(0, 256, 100).astype(np.uint8)
    assert np.array_equal(hamming_distance(a, b), hamming_distance(b, a))
    assert (hamming_distance(a, a) == 0).all()
