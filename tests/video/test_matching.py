"""Tests for the golden census matcher."""

import numpy as np
import pytest

from repro.video import (
    FrameSequence,
    SceneConfig,
    census_transform,
    match_features,
    motion_field_error,
)


def test_identical_frames_give_zero_motion():
    rng = np.random.default_rng(0)
    frame = rng.integers(0, 256, (32, 32)).astype(np.uint8)
    feat = census_transform(frame)
    dx, dy, valid = match_features(feat, feat)
    assert (dx[valid] == 0).all()
    assert (dy[valid] == 0).all()
    assert valid.any()


def test_global_translation_recovered():
    rng = np.random.default_rng(1)
    prev = rng.integers(0, 256, (40, 40)).astype(np.uint8)
    curr = np.roll(prev, (1, 2), axis=(0, 1))  # moved down 1, right 2
    fprev, fcurr = census_transform(prev), census_transform(curr)
    dx, dy, valid = match_features(fprev, fcurr)
    interior = np.zeros_like(valid)
    interior[6:-6, 6:-6] = True
    sel = valid & interior
    assert sel.any()
    assert np.median(dx[sel]) == 2
    assert np.median(dy[sel]) == 1


def test_invalid_vectors_at_featureless_pixels():
    frame = np.full((20, 20), 77, dtype=np.uint8)
    feat = census_transform(frame)
    dx, dy, valid = match_features(feat, feat)
    assert not valid.any()


def test_border_is_invalid():
    rng = np.random.default_rng(2)
    frame = rng.integers(0, 256, (20, 20)).astype(np.uint8)
    feat = census_transform(frame)
    _, _, valid = match_features(feat, feat, radius=2)
    assert not valid[:3, :].any()
    assert not valid[:, -3:].any()


def test_search_radius_limits_recoverable_motion():
    rng = np.random.default_rng(3)
    prev = rng.integers(0, 256, (40, 40)).astype(np.uint8)
    curr = np.roll(prev, 3, axis=1)  # dx=3 beyond radius 2
    dx, dy, valid = match_features(
        census_transform(prev), census_transform(curr), radius=2
    )
    sel = valid.copy()
    sel[:8, :] = sel[-8:, :] = False
    sel[:, :8] = sel[:, -8:] = False
    # radius-2 search cannot produce dx=3
    assert (np.abs(dx) <= 2).all()
    dx4, _, valid4 = match_features(
        census_transform(prev), census_transform(curr), radius=4
    )
    sel4 = valid4.copy()
    sel4[:8, :] = sel4[-8:, :] = False
    sel4[:, :8] = sel4[:, -8:] = False
    assert np.median(dx4[sel4]) == 3


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        match_features(np.zeros((10, 10), np.uint8), np.zeros((10, 12), np.uint8))


def test_too_small_for_radius_rejected():
    with pytest.raises(ValueError):
        match_features(np.zeros((6, 6), np.uint8), np.zeros((6, 6), np.uint8), radius=2)


def test_end_to_end_scene_motion_recovered():
    """Full pipeline on a synthetic scene: object vectors match ground truth."""
    cfg = SceneConfig(width=96, height=72, n_objects=1, max_speed=2, seed=42)
    seq = FrameSequence(cfg)
    f0, f1 = seq.frame(0), seq.frame(1)
    dx, dy, valid = match_features(census_transform(f0), census_transform(f1))
    (expected,) = seq.true_motion(0)
    mask = seq.object_mask(1, margin=4)
    err = motion_field_error(dx, dy, valid, mask, expected)
    assert err < 0.25, f"motion error {err:.2%} too high for {expected}"


def test_motion_field_error_empty_mask():
    z = np.zeros((10, 10), dtype=np.int8)
    assert motion_field_error(z, z, np.zeros((10, 10), bool), np.zeros((10, 10), bool), (0, 0)) == 1.0


def test_zero_displacement_preferred_on_ties():
    """Ambiguous (flat-cost) regions resolve to the smallest displacement."""
    rng = np.random.default_rng(4)
    prev = rng.integers(0, 256, (30, 30)).astype(np.uint8)
    feat = census_transform(prev)
    dx, dy, valid = match_features(feat, feat)
    assert (dx[valid] == 0).all() and (dy[valid] == 0).all()
