"""Tests for the Video VIPs (camera/display substitutes)."""

import numpy as np

from repro.bus import PlbBus, PlbMemory
from repro.kernel import Clock, MHz, Module, Simulator
from repro.video import (
    FrameSequence,
    SceneConfig,
    VideoInVIP,
    VideoOutVIP,
    pack_pixels,
    pack_vectors,
    unpack_pixels,
)

FRAME_BASE = 0x0000_0000
VEC_BASE = 0x0001_0000


def make_env(width=32, height=16):
    sim = Simulator()
    top = Module("top")
    clk = Clock("clk", MHz(100), parent=top)
    bus = PlbBus("plb", clk, parent=top)
    mem = PlbMemory("mem", 256 * 1024, parent=top)
    bus.attach_slave(mem, base=0, size=256 * 1024)
    seq = FrameSequence(SceneConfig(width=width, height=height))
    vin = VideoInVIP("vin", bus.attach_master("vin"), seq, parent=top)
    vout = VideoOutVIP("vout", bus.attach_master("vout"), parent=top)
    sim.add_module(top)
    return sim, top, clk, bus, mem, seq, vin, vout


def test_video_in_writes_frame_to_memory():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()
    sent = {}

    def driver():
        frame = yield from vin.send_frame(0, FRAME_BASE)
        sent["frame"] = frame

    sim.fork(driver())
    sim.run(until=50_000_000)
    words = mem.dump_words(FRAME_BASE, vin.frame_words)
    recovered = unpack_pixels(words).reshape(16, 32)
    assert np.array_equal(recovered, sent["frame"])
    assert vin.frames_sent == 1


def test_video_out_reads_back_pixels():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()
    got = {}

    def driver():
        frame = yield from vin.send_frame(2, FRAME_BASE)
        out = yield from vout.fetch_pixels(FRAME_BASE, (16, 32))
        got["in"], got["out"] = frame, out

    sim.fork(driver())
    sim.run(until=100_000_000)
    assert np.array_equal(got["in"], got["out"])
    assert vout.frames_received == 1


def test_video_out_delivers_to_mailbox():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()

    def driver():
        yield from vin.send_frame(0, FRAME_BASE)
        yield from vout.fetch_pixels(FRAME_BASE, (16, 32))

    sim.fork(driver())
    sim.run(until=100_000_000)
    kind, frame = vout.mailbox.try_get()
    assert kind == "pixels"
    assert frame.shape == (16, 32)


def test_video_out_fetch_vectors():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()
    dx = np.full((4, 8), 2, dtype=np.int8)
    dy = np.full((4, 8), -1, dtype=np.int8)
    valid = np.ones((4, 8), dtype=bool)
    mem.load_words(VEC_BASE, pack_vectors(dx, dy, valid))
    got = {}

    def driver():
        got["v"] = yield from vout.fetch_vectors(VEC_BASE, (4, 8))

    sim.fork(driver())
    sim.run(until=100_000_000)
    rdx, rdy, rvalid = got["v"]
    assert np.array_equal(rdx, dx)
    assert np.array_equal(rdy, dy)
    assert rvalid.all()


def test_backdoor_load_matches_bus_path():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()
    frame = vin.send_frame_backdoor(1, mem, FRAME_BASE)
    words = mem.dump_words(FRAME_BASE, vin.frame_words)
    assert np.array_equal(unpack_pixels(words).reshape(frame.shape), frame)


def test_frame_transfer_generates_bus_traffic():
    sim, top, clk, bus, mem, seq, vin, vout = make_env()

    def driver():
        yield from vin.send_frame(0, FRAME_BASE)

    sim.fork(driver())
    sim.run(until=50_000_000)
    assert bus.total_beats == vin.frame_words
    assert bus.total_transactions == vin.frame_words // 16
