"""Tests for pixel/vector word packing."""

import numpy as np
import pytest

from repro.video import (
    pack_pixels,
    pack_vectors,
    unpack_pixels,
    unpack_vectors,
    words_per_row,
)


def test_pack_unpack_pixels_roundtrip():
    rng = np.random.default_rng(0)
    row = rng.integers(0, 256, 64).astype(np.uint8)
    assert np.array_equal(unpack_pixels(pack_pixels(row)), row)


def test_pixel_byte_order_little_endian():
    row = np.array([0x11, 0x22, 0x33, 0x44], dtype=np.uint8)
    assert pack_pixels(row)[0] == 0x44332211


def test_pack_pixels_requires_multiple_of_4():
    with pytest.raises(ValueError):
        pack_pixels(np.zeros(5, dtype=np.uint8))


def test_unpack_pixels_count():
    words = pack_pixels(np.arange(8, dtype=np.uint8))
    assert len(unpack_pixels(words, count=6)) == 6
    with pytest.raises(ValueError):
        unpack_pixels(words, count=9)


def test_words_per_row():
    assert words_per_row(160) == 40
    with pytest.raises(ValueError):
        words_per_row(158)


def test_pack_unpack_vectors_roundtrip():
    rng = np.random.default_rng(1)
    dx = rng.integers(-4, 5, (6, 8)).astype(np.int8)
    dy = rng.integers(-4, 5, (6, 8)).astype(np.int8)
    valid = rng.integers(0, 2, (6, 8)).astype(bool)
    words = pack_vectors(dx, dy, valid)
    dx2, dy2, valid2 = unpack_vectors(words, shape=(6, 8))
    assert np.array_equal(dx2, dx)
    assert np.array_equal(dy2, dy)
    assert np.array_equal(valid2, valid)


def test_vector_encoding_layout():
    words = pack_vectors(
        np.array([-2], dtype=np.int8),
        np.array([1], dtype=np.int8),
        np.array([True]),
    )
    w = int(words[0])
    assert w & 0xFF == 126  # -2 + 128
    assert (w >> 8) & 0xFF == 129  # 1 + 128
    assert w & (1 << 16)


def test_vector_range_checked():
    with pytest.raises(ValueError):
        pack_vectors(
            np.array([200], dtype=np.int16),
            np.array([0], dtype=np.int16),
            np.array([True]),
        )


def test_vector_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        pack_vectors(
            np.zeros(3, np.int8), np.zeros(4, np.int8), np.zeros(3, bool)
        )
