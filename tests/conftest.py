"""Suite-wide pytest configuration: the marker tiering scheme.

Every test carries exactly one tier marker:

* ``tier1`` — the default, auto-applied here to anything not explicitly
  marked otherwise.  The ROADMAP verify command
  (``PYTHONPATH=src python -m pytest -x -q``) runs the whole suite;
  ``-m tier1`` selects just this fast core.
* ``slow`` — long-running end-to-end suites (full example scripts,
  multi-process fleet sweeps); ``-m "not slow"`` skips them.
* ``fuzz`` — the coverage-closure fuzzing, differential-checking and
  checker-mutation suites; CI runs them in a dedicated job on top of
  ``repro fuzz --check``.

See the "Test tiers" section of the README.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "slow" not in item.keywords and "fuzz" not in item.keywords:
            item.add_marker(pytest.mark.tier1)
